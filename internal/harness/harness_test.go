package harness

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/desim"
	"repro/internal/device"
	"repro/internal/silicon"
	"repro/internal/store"
)

func testConfig(t *testing.T) Config {
	t.Helper()
	profile, err := silicon.ATmega32u4()
	if err != nil {
		t.Fatal(err)
	}
	return DefaultConfig(profile, 99)
}

func smallRig(t *testing.T, slavesPerLayer int) *Rig {
	t.Helper()
	cfg := testConfig(t)
	cfg.SlavesPerLayer = slavesPerLayer
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestConfigValidate(t *testing.T) {
	good := testConfig(t)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Layers = 0 },
		func(c *Config) { c.Layers = 3 },
		func(c *Config) { c.SlavesPerLayer = 0 },
		func(c *Config) { c.BusClockHz = 0 },
		func(c *Config) { c.PowerOnTime = 0 },
		func(c *Config) { c.I2CErrorRate = 2 },
		func(c *Config) { c.BootDelay = c.PowerOnTime }, // readout cannot fit
		func(c *Config) { c.Profile.SRAMBytes = 0 },
	}
	for i, mutate := range bad {
		c := testConfig(t)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := testConfig(t)
	if cfg.Layers != 2 || cfg.SlavesPerLayer != 8 {
		t.Errorf("rig layout %dx%d, want 2x8", cfg.Layers, cfg.SlavesPerLayer)
	}
	if cfg.CyclePeriod() != desim.FromSeconds(5.4) {
		t.Errorf("cycle period = %v, want 5.4 s", cfg.CyclePeriod())
	}
	if cfg.PowerOnTime != desim.FromSeconds(3.8) || cfg.PowerOffTime != desim.FromSeconds(1.6) {
		t.Errorf("phases = %v/%v, want 3.8/1.6 s", cfg.PowerOnTime, cfg.PowerOffTime)
	}
}

func TestRigAssembly(t *testing.T) {
	r := smallRig(t, 8)
	if len(r.Boards()) != 16 {
		t.Fatalf("boards = %d, want 16", len(r.Boards()))
	}
	if len(r.Arrays()) != 16 {
		t.Fatalf("arrays = %d", len(r.Arrays()))
	}
	for i, b := range r.Boards() {
		if b.ID != i {
			t.Fatalf("board %d has ID %d", i, b.ID)
		}
		wantLayer := i / 8
		if b.Layer != wantLayer {
			t.Fatalf("board %d on layer %d, want %d", i, b.Layer, wantLayer)
		}
	}
}

func TestRunWindowProducesRecords(t *testing.T) {
	r := smallRig(t, 2)
	start := store.MonthlyWindowStart(0)
	if err := r.RunWindow(5, start); err != nil {
		t.Fatal(err)
	}
	a := r.Archive()
	if a.Len() != 4*5 {
		t.Fatalf("archive has %d records, want 20", a.Len())
	}
	for _, board := range a.Boards() {
		recs := a.Records(board)
		if len(recs) != 5 {
			t.Fatalf("board %d: %d records, want 5", board, len(recs))
		}
		for i, rec := range recs {
			if rec.Data.Len() != 8192 {
				t.Fatalf("record bits = %d, want 8192", rec.Data.Len())
			}
			if rec.Seq != uint64(i+1) {
				t.Fatalf("board %d record %d: seq %d", board, i, rec.Seq)
			}
			if rec.Wall.Before(start) {
				t.Fatalf("record timestamp %v before window start", rec.Wall)
			}
		}
	}
	if r.ReadErrors() != 0 {
		t.Fatalf("read errors = %d", r.ReadErrors())
	}
}

func TestRunWindowRejectsBadSize(t *testing.T) {
	r := smallRig(t, 1)
	if err := r.RunWindow(0, store.Epoch); err == nil {
		t.Fatal("zero-measurement window accepted")
	}
}

func TestCycleTimingMatchesFig3(t *testing.T) {
	// Fig. 3: period 5.4 s, on-time 3.8 s, layers out of phase.
	r := smallRig(t, 2)
	r.Switch().SetTracing(true)
	if err := r.RunWindow(6, store.Epoch); err != nil {
		t.Fatal(err)
	}
	trace := r.Switch().Trace()
	for _, ch := range []int{0, 1, 2, 3} {
		period, err := device.CyclePeriod(trace, ch)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(period.Seconds()-5.4) > 0.01 {
			t.Errorf("channel %d: period = %v, want 5.4 s", ch, period)
		}
		on, err := device.OnTime(trace, ch)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(on.Seconds()-3.8) > 0.01 {
			t.Errorf("channel %d: on-time = %v, want 3.8 s", ch, on)
		}
	}
	// Boards on the same layer switch together; layers are offset by 2.7 s.
	atProbe := desim.FromSeconds(1.0)
	if !device.WaveformSample(trace, 0, atProbe) || !device.WaveformSample(trace, 1, atProbe) {
		t.Error("layer 0 boards not powered at t=1 s")
	}
	if device.WaveformSample(trace, 2, atProbe) {
		t.Error("layer 1 board powered at t=1 s; layers should be out of phase")
	}
	if !device.WaveformSample(trace, 2, desim.FromSeconds(3.0)) {
		t.Error("layer 1 board not powered at t=3.0 s")
	}
}

func TestLayerSynchronisation(t *testing.T) {
	// Algorithm 1's handshake: both layers produce exactly the same number
	// of measurements even though they run out of phase.
	r := smallRig(t, 3)
	if err := r.RunWindow(7, store.Epoch); err != nil {
		t.Fatal(err)
	}
	for _, board := range r.Archive().Boards() {
		if n := len(r.Archive().Records(board)); n != 7 {
			t.Fatalf("board %d produced %d records, want 7 (layer sync broken)", board, n)
		}
	}
}

func TestMeasurementRateMatchesPaper(t *testing.T) {
	// "around 10 measurements per minute" per board across the rig.
	cfg := testConfig(t)
	perMinute := 60.0 / cfg.CyclePeriod().Seconds()
	if perMinute < 10 || perMinute > 12 {
		t.Fatalf("measurements per board-minute = %v, paper says ~10-11", perMinute)
	}
}

func TestDeterministicWindows(t *testing.T) {
	r1 := smallRig(t, 2)
	r2 := smallRig(t, 2)
	if err := r1.RunWindow(3, store.Epoch); err != nil {
		t.Fatal(err)
	}
	if err := r2.RunWindow(3, store.Epoch); err != nil {
		t.Fatal(err)
	}
	a1, a2 := r1.Archive(), r2.Archive()
	if a1.Len() != a2.Len() {
		t.Fatalf("archive sizes differ: %d vs %d", a1.Len(), a2.Len())
	}
	for _, b := range a1.Boards() {
		recs1, recs2 := a1.Records(b), a2.Records(b)
		for i := range recs1 {
			if !recs1[i].Data.Equal(recs2[i].Data) {
				t.Fatalf("board %d record %d differs between identical seeds", b, i)
			}
		}
	}
}

func TestSeqAndCycleBases(t *testing.T) {
	r := smallRig(t, 1)
	r.SetSeqBase(1000000)
	r.SetCycleBase(500000)
	if err := r.RunWindow(2, store.Epoch); err != nil {
		t.Fatal(err)
	}
	recs := r.Archive().Records(0)
	if recs[0].Seq != 1000001 {
		t.Fatalf("first seq = %d, want 1000001", recs[0].Seq)
	}
	if recs[0].Cycle != 500000 {
		t.Fatalf("first cycle = %d, want 500000", recs[0].Cycle)
	}
}

func TestI2CErrorInjectionCountsErrors(t *testing.T) {
	cfg := testConfig(t)
	cfg.SlavesPerLayer = 1
	cfg.I2CErrorRate = 0.001 // ~1 corrupted byte per 1 KByte read
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RunWindow(10, store.Epoch); err != nil {
		t.Fatal(err)
	}
	// Corruption does not break framing (payload length unchanged), so
	// records still arrive; the point is the archive keeps operating.
	if r.Archive().Len() != 20 {
		t.Fatalf("archive len = %d, want 20", r.Archive().Len())
	}
}

func TestWindowTimestampsSpacing(t *testing.T) {
	r := smallRig(t, 1)
	if err := r.RunWindow(4, store.Epoch); err != nil {
		t.Fatal(err)
	}
	recs := r.Archive().Records(0)
	for i := 1; i < len(recs); i++ {
		dt := recs[i].Wall.Sub(recs[i-1].Wall)
		if math.Abs(dt.Seconds()-5.4) > 0.01 {
			t.Fatalf("record spacing = %v, want 5.4 s", dt)
		}
	}
	_ = time.Second
}

// TestStreamWindowAbortPoisonsRig: a window stopped mid-cycle by a sink
// failure leaves stale events in the simulator queue, so the rig must
// refuse further windows instead of silently corrupting them.
func TestStreamWindowAbortPoisonsRig(t *testing.T) {
	r := smallRig(t, 1)
	boom := errors.New("boom")
	err := r.StreamWindow(20, store.Epoch, func(store.Record) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("aborted window: err = %v, want boom", err)
	}
	if err := r.RunWindow(2, store.Epoch.Add(time.Hour)); err == nil {
		t.Fatal("poisoned rig accepted another window")
	}
	if err := r.StreamWindow(2, store.Epoch.Add(time.Hour), func(store.Record) error { return nil }); err == nil {
		t.Fatal("poisoned rig accepted another stream window")
	}
}
