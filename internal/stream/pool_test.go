package stream

import (
	"reflect"
	"testing"
)

func TestSplitBudget(t *testing.T) {
	cases := []struct {
		total, parts int
		want         []int
	}{
		// Unbounded stays unbounded on every shard.
		{0, 3, []int{0, 0, 0}},
		{-4, 2, []int{0, 0}},
		// Even and uneven splits preserve the total.
		{8, 2, []int{4, 4}},
		{7, 3, []int{3, 2, 2}},
		{5, 5, []int{1, 1, 1, 1, 1}},
		// A budget below the shard count inflates to 1 per shard — a
		// zero share would mean "unbounded" to the receiving pool.
		{2, 4, []int{1, 1, 1, 1}},
		{1, 1, []int{1}},
	}
	for _, c := range cases {
		got := SplitBudget(c.total, c.parts)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("SplitBudget(%d, %d) = %v, want %v", c.total, c.parts, got, c.want)
		}
	}
	if got := SplitBudget(4, 0); got != nil {
		t.Errorf("SplitBudget(4, 0) = %v, want nil", got)
	}
}

func TestPoolWorkers(t *testing.T) {
	if got := NewPool(3).Workers(); got != 3 {
		t.Errorf("Workers() = %d, want 3", got)
	}
	if got := NewPool(0).Workers(); got != 0 {
		t.Errorf("unbounded Workers() = %d, want 0", got)
	}
}
