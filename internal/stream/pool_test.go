package stream

import (
	"reflect"
	"runtime"
	"sync"
	"testing"
)

func TestSplitBudget(t *testing.T) {
	cases := []struct {
		total, parts int
		want         []int
	}{
		// Unbounded stays unbounded on every shard.
		{0, 3, []int{0, 0, 0}},
		{-4, 2, []int{0, 0}},
		// Even and uneven splits preserve the total.
		{8, 2, []int{4, 4}},
		{7, 3, []int{3, 2, 2}},
		{5, 5, []int{1, 1, 1, 1, 1}},
		// A budget below the shard count inflates to 1 per shard — a
		// zero share would mean "unbounded" to the receiving pool.
		{2, 4, []int{1, 1, 1, 1}},
		{1, 1, []int{1}},
	}
	for _, c := range cases {
		got := SplitBudget(c.total, c.parts)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("SplitBudget(%d, %d) = %v, want %v", c.total, c.parts, got, c.want)
		}
	}
	if got := SplitBudget(4, 0); got != nil {
		t.Errorf("SplitBudget(4, 0) = %v, want nil", got)
	}
}

func TestPoolWorkers(t *testing.T) {
	if got := NewPool(3).Workers(); got != 3 {
		t.Errorf("Workers() = %d, want 3", got)
	}
	if got := NewPool(0).Workers(); got != 0 {
		t.Errorf("unbounded Workers() = %d, want 0", got)
	}
}

// TestPoolAccountingSharedBudget is the pool-budget guarantee of the
// assessment service: many concurrent Run calls (one per campaign) on one
// bounded Pool never exceed the single global worker budget, and the
// high-watermark proves the bound was actually contended (the budget was
// used, not just never approached).
func TestPoolAccountingSharedBudget(t *testing.T) {
	const workers, campaigns, jobsPer = 3, 5, 8
	p := NewPool(workers)
	gate := make(chan struct{}) // holds every job until all are queued
	var wg sync.WaitGroup
	for c := 0; c < campaigns; c++ {
		jobs := make([]func() error, jobsPer)
		for j := range jobs {
			jobs[j] = func() error {
				if got := p.InFlight(); got > workers {
					t.Errorf("InFlight() = %d during job, budget %d", got, workers)
				}
				<-gate
				return nil
			}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Run(jobs...); err != nil {
				t.Errorf("Run: %v", err)
			}
		}()
	}
	// Release the jobs only once the budget is observably saturated:
	// exactly `workers` jobs hold slots and block on the gate.
	for p.InFlight() < workers {
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()
	if got := p.MaxInFlight(); got > workers {
		t.Fatalf("MaxInFlight() = %d, want <= %d: concurrent campaigns overshot the global budget", got, workers)
	}
	if got := p.MaxInFlight(); got != workers {
		t.Fatalf("MaxInFlight() = %d, want %d: %d campaigns x %d jobs should saturate the budget", got, workers, campaigns, jobsPer)
	}
	if got := p.InFlight(); got != 0 {
		t.Fatalf("InFlight() = %d after all Runs returned, want 0", got)
	}
}

// TestRunSlotted verifies the slot contract: every job gets a slot in
// [0, slots), no two concurrent jobs share one, all jobs run, and errors
// join like Run's.
func TestRunSlotted(t *testing.T) {
	const slots, jobs = 3, 20
	p := NewPool(8)
	var mu sync.Mutex
	held := make(map[int]bool, slots)
	ran := make([]bool, jobs)
	fns := make([]func(int) error, jobs)
	for i := range fns {
		i := i
		fns[i] = func(slot int) error {
			if slot < 0 || slot >= slots {
				t.Errorf("job %d: slot %d out of [0,%d)", i, slot, slots)
			}
			mu.Lock()
			if held[slot] {
				t.Errorf("job %d: slot %d already held by a concurrent job", i, slot)
			}
			held[slot] = true
			ran[i] = true
			mu.Unlock()
			runtime.Gosched()
			mu.Lock()
			held[slot] = false
			mu.Unlock()
			return nil
		}
	}
	if err := p.RunSlotted(slots, fns...); err != nil {
		t.Fatalf("RunSlotted: %v", err)
	}
	for i, r := range ran {
		if !r {
			t.Fatalf("job %d never ran", i)
		}
	}
}

// TestRunSlottedDefaults pins slot-count defaulting: non-positive slots
// fall back to the pool bound, and an unbounded pool hands every job its
// own slot.
func TestRunSlottedDefaults(t *testing.T) {
	bounded := NewPool(2)
	seen := make(map[int]bool)
	var mu sync.Mutex
	job := func(slot int) error {
		mu.Lock()
		seen[slot] = true
		mu.Unlock()
		return nil
	}
	if err := bounded.RunSlotted(0, job, job, job, job); err != nil {
		t.Fatal(err)
	}
	for slot := range seen {
		if slot < 0 || slot >= 2 {
			t.Fatalf("bounded pool handed slot %d, want [0,2)", slot)
		}
	}
	unbounded := NewPool(0)
	slotCh := make(chan int, 3)
	gate := make(chan struct{})
	err := unbounded.RunSlotted(0,
		func(s int) error { slotCh <- s; <-gate; return nil },
		func(s int) error { slotCh <- s; <-gate; return nil },
		func(s int) error { slotCh <- s; close(gate); return nil })
	if err != nil {
		t.Fatal(err)
	}
	close(slotCh)
	distinct := make(map[int]bool)
	for s := range slotCh {
		distinct[s] = true
	}
	if len(distinct) != 3 {
		t.Fatalf("unbounded pool: %d distinct slots for 3 gated jobs, want 3", len(distinct))
	}
}
