package stream

import (
	"errors"
	"io"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/bitvec"
	"repro/internal/entropy"
	"repro/internal/metrics"
	"repro/internal/rng"
)

// noisyWindow synthesises a realistic measurement window: a random base
// pattern re-measured n times with per-cell flip probability flipP, so the
// window has stable cells, biased cells and noisy cells like a real SRAM
// read-out stream.
func noisyWindow(seed uint64, bits, n int, flipP float64) []*bitvec.Vector {
	r := rng.New(seed)
	base := bitvec.New(bits)
	for i := 0; i < bits; i++ {
		base.Set(i, r.Bernoulli(0.6))
	}
	out := make([]*bitvec.Vector, n)
	for k := range out {
		m := base.Clone()
		for i := 0; i < bits; i++ {
			if r.Bernoulli(flipP) {
				m.Set(i, !m.Get(i))
			}
		}
		out[k] = m
	}
	return out
}

// TestAccumulatorsMatchBatchOracle is the golden-equivalence property: on
// identical windows, every streaming accumulator must be bit-identical to
// its batch counterpart in internal/metrics / internal/entropy, across
// several seeds and window sizes (including non-word-aligned widths).
func TestAccumulatorsMatchBatchOracle(t *testing.T) {
	cases := []struct {
		seed  uint64
		bits  int
		n     int
		flipP float64
	}{
		{1, 256, 50, 0.01},
		{2, 1000, 120, 0.02}, // non-word-aligned width
		{3, 8192, 40, 0.005},
		{4, 64, 500, 0.1},
		{5, 130, 3, 0.3},
		// Regression: n where float64(n)*(1/float64(n)) != 1 — the
		// count-based stable-cell comparison must classify fully-stable
		// cells identically in the oracle and the accumulator.
		{6, 512, 49, 0.02},
	}
	for _, tc := range cases {
		window := noisyWindow(tc.seed, tc.bits, tc.n, tc.flipP)
		ref := window[0].Clone()

		// Batch oracle.
		wc, err := metrics.WithinClassHD(ref, window)
		if err != nil {
			t.Fatal(err)
		}
		fw, err := metrics.FractionalHW(window)
		if err != nil {
			t.Fatal(err)
		}
		counts, n, err := entropy.OneCounts(window)
		if err != nil {
			t.Fatal(err)
		}
		probs, err := entropy.ProbabilitiesFromCounts(counts, n)
		if err != nil {
			t.Fatal(err)
		}
		noise, err := entropy.NoiseMinEntropy(probs)
		if err != nil {
			t.Fatal(err)
		}
		stable, err := entropy.StableCellRatio(counts, n)
		if err != nil {
			t.Fatal(err)
		}

		// Streaming pass.
		dev := NewDevice(nil)
		if _, err := Drain(Slice(window), dev); err != nil {
			t.Fatal(err)
		}
		r, err := dev.Result()
		if err != nil {
			t.Fatal(err)
		}
		if r.Count != tc.n {
			t.Fatalf("seed %d: count %d, want %d", tc.seed, r.Count, tc.n)
		}
		// Bit-identical, not approximately equal.
		if r.WCHDMean != wc.Mean || r.WCHDMax != wc.Max {
			t.Errorf("seed %d: WCHD stream (%v,%v) != batch (%v,%v)", tc.seed, r.WCHDMean, r.WCHDMax, wc.Mean, wc.Max)
		}
		if r.FHW != fw.Mean {
			t.Errorf("seed %d: FHW stream %v != batch %v", tc.seed, r.FHW, fw.Mean)
		}
		if r.NoiseHmin != noise {
			t.Errorf("seed %d: noise Hmin stream %v != batch %v", tc.seed, r.NoiseHmin, noise)
		}
		if r.StableRatio != stable {
			t.Errorf("seed %d: stable ratio stream %v != batch %v", tc.seed, r.StableRatio, stable)
		}
		if !dev.Ref().Equal(ref) || !dev.First().Equal(window[0]) {
			t.Errorf("seed %d: adopted reference/first differs from window head", tc.seed)
		}

		// One-probabilities themselves.
		ones := NewOnes()
		if _, err := Drain(Slice(window), ones); err != nil {
			t.Fatal(err)
		}
		sp, err := ones.Probabilities()
		if err != nil {
			t.Fatal(err)
		}
		for i := range probs {
			if sp[i] != probs[i] {
				t.Fatalf("seed %d: one-probability[%d] stream %v != batch %v", tc.seed, i, sp[i], probs[i])
			}
		}
	}
}

// TestFlipsAgreesWithOnesStableCount pins the two stable-cell definitions
// (never flips vs one-count in {0, n}) to each other, both at the
// integer-tally level and — now that the oracle compares counts — at the
// exact float-ratio level, including window sizes like 49 where the
// historical probability comparison went wrong.
func TestFlipsAgreesWithOnesStableCount(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		for _, n := range []int{49, 64} {
			window := noisyWindow(seed, 512, n, 0.05)
			ones, flips := NewOnes(), NewFlips()
			if _, err := Drain(Slice(window), ones, flips); err != nil {
				t.Fatal(err)
			}
			fromOnes := 0
			for _, c := range ones.counts {
				if c == 0 || c == ones.count {
					fromOnes++
				}
			}
			changed, err := flips.Changed()
			if err != nil {
				t.Fatal(err)
			}
			fromFlips := changed.Len() - changed.HammingWeight()
			if fromOnes != fromFlips {
				t.Fatalf("seed %d n %d: ones stable count %d != flips stable count %d", seed, n, fromOnes, fromFlips)
			}
			ro, err := ones.StableRatio()
			if err != nil {
				t.Fatal(err)
			}
			rf, err := flips.StableRatio()
			if err != nil {
				t.Fatal(err)
			}
			if ro != rf {
				t.Fatalf("seed %d n %d: ones stable ratio %v != flips stable ratio %v", seed, n, ro, rf)
			}
		}
	}
}

func TestCrossMatchesBatchOracle(t *testing.T) {
	const devices = 6
	cross := NewCross()
	firsts := make([]*bitvec.Vector, devices)
	for d := range firsts {
		firsts[d] = noisyWindow(uint64(100+d), 777, 1, 0)[0]
		if err := cross.Add(firsts[d]); err != nil {
			t.Fatal(err)
		}
	}
	bc, err := metrics.BetweenClassHD(firsts)
	if err != nil {
		t.Fatal(err)
	}
	puf, err := entropy.PUFMinEntropy(firsts)
	if err != nil {
		t.Fatal(err)
	}
	r, err := cross.Result()
	if err != nil {
		t.Fatal(err)
	}
	if r.BCHDMean != bc.Mean || r.BCHDMin != bc.Min || r.BCHDMax != bc.Max || r.PUFHmin != puf {
		t.Fatalf("cross stream %+v != batch (%v,%v,%v,%v)", r, bc.Mean, bc.Min, bc.Max, puf)
	}
	if cross.Devices() != devices {
		t.Fatalf("devices = %d", cross.Devices())
	}
}

func TestSamplerReusesScratchAndEnds(t *testing.T) {
	calls := 0
	src := Sampler(64, 3, func(dst *bitvec.Vector) error {
		calls++
		dst.SetWord(0, uint64(calls))
		return nil
	})
	var seen []*bitvec.Vector
	for {
		m, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		seen = append(seen, m)
	}
	if calls != 3 || len(seen) != 3 {
		t.Fatalf("calls=%d seen=%d", calls, len(seen))
	}
	if seen[0] != seen[1] || seen[1] != seen[2] {
		t.Error("sampler did not reuse its scratch vector")
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("post-EOF Next: %v", err)
	}
}

func TestEmptyAccumulators(t *testing.T) {
	if _, err := NewDevice(nil).Result(); !errors.Is(err, ErrNoMeasurements) {
		t.Errorf("empty device result: %v", err)
	}
	if _, err := NewOnes().Probabilities(); !errors.Is(err, ErrNoMeasurements) {
		t.Errorf("empty ones: %v", err)
	}
	if _, err := NewFlips().StableRatio(); !errors.Is(err, ErrNoMeasurements) {
		t.Errorf("empty flips: %v", err)
	}
	if _, err := NewFHW().Mean(); !errors.Is(err, ErrNoMeasurements) {
		t.Errorf("empty FHW: %v", err)
	}
	if _, err := NewWCHD(nil); err == nil {
		t.Error("nil reference accepted")
	}
	if _, err := NewCross().Result(); err == nil {
		t.Error("cross result with < 2 devices accepted")
	}
}

func TestLengthMismatchPropagates(t *testing.T) {
	dev := NewDevice(nil)
	if err := dev.Add(bitvec.New(64)); err != nil {
		t.Fatal(err)
	}
	if err := dev.Add(bitvec.New(128)); err == nil {
		t.Error("length mismatch not detected")
	}
}

func TestPoolRunsAllJobsAndJoinsErrors(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 100} {
		p := NewPool(workers)
		ran := make([]bool, 7)
		jobs := make([]func() error, len(ran))
		boom := errors.New("boom")
		for i := range jobs {
			i := i
			jobs[i] = func() error {
				ran[i] = true
				if i == 4 {
					return boom
				}
				return nil
			}
		}
		err := p.Run(jobs...)
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		for i, ok := range ran {
			if !ok {
				t.Fatalf("workers=%d: job %d did not run", workers, i)
			}
		}
		if err := p.Run(); err != nil {
			t.Fatalf("workers=%d: empty run: %v", workers, err)
		}
	}
}

// TestPoolSharesBoundAcrossConcurrentRuns: the worker semaphore lives on
// the Pool, so two Run calls in flight at once (a condition sweep's grid
// points) together never exceed the configured bound.
func TestPoolSharesBoundAcrossConcurrentRuns(t *testing.T) {
	const bound = 2
	p := NewPool(bound)
	var active, peak int32
	var mu sync.Mutex
	job := func() error {
		mu.Lock()
		active++
		if active > peak {
			peak = active
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		mu.Lock()
		active--
		mu.Unlock()
		return nil
	}
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			jobs := make([]func() error, 5)
			for i := range jobs {
				jobs[i] = job
			}
			if err := p.Run(jobs...); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if peak > bound {
		t.Fatalf("concurrent Runs reached %d jobs in flight, bound is %d", peak, bound)
	}
}

// TestStableMaskAgreesWithRatioAndFlips: the mask classifies exactly the
// cells the count-based ratio counts, and is the complement of the Flips
// changed bitmap.
func TestStableMaskAgreesWithRatioAndFlips(t *testing.T) {
	window := noisyWindow(3, 512, 49, 0.05)
	ones, flips := NewOnes(), NewFlips()
	if _, err := Drain(Slice(window), ones, flips); err != nil {
		t.Fatal(err)
	}
	mask, err := ones.StableMask()
	if err != nil {
		t.Fatal(err)
	}
	ratio, err := ones.StableRatio()
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(mask.HammingWeight()) / float64(mask.Len()); got != ratio {
		t.Fatalf("mask ratio %v != StableRatio %v", got, ratio)
	}
	changed, err := flips.Changed()
	if err != nil {
		t.Fatal(err)
	}
	if !mask.Equal(changed.Not()) {
		t.Fatal("stable mask is not the complement of the flip bitmap")
	}
	if _, err := NewOnes().StableMask(); !errors.Is(err, ErrNoMeasurements) {
		t.Fatalf("empty accumulator: err = %v, want ErrNoMeasurements", err)
	}
}

// TestStreamingAllocsIndependentOfWindowSize is the bounded-memory claim
// as a test: folding an 8× larger window through a Device accumulator must
// not allocate proportionally more — allocations are O(array size), paid
// once per window, not O(WindowSize × array size).
func TestStreamingAllocsIndependentOfWindowSize(t *testing.T) {
	const bits = 2048
	run := func(n int) float64 {
		window := noisyWindow(42, bits, n, 0.02)
		return testing.AllocsPerRun(5, func() {
			dev := NewDevice(nil)
			if _, err := Drain(Slice(window), dev); err != nil {
				t.Fatal(err)
			}
			if _, err := dev.Result(); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, large := run(50), run(400)
	if large > 1.5*small+8 {
		t.Errorf("allocs grew with window size: %v (n=50) -> %v (n=400)", small, large)
	}
	if math.IsNaN(small) || small == 0 {
		t.Fatalf("implausible alloc count %v", small)
	}
}
