package stream

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/entropy"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/silicon"
	"repro/internal/sram"
)

// The memory/throughput claim of the streaming refactor, machine-checked:
// evaluating one device-window by streaming costs O(array size) heap —
// one scratch vector plus the accumulator state — while the historical
// collect-then-evaluate flow allocates every one of the WindowSize
// patterns plus per-measurement metric series. Run with -benchmem and
// compare B/op across the two and across window sizes: streaming B/op is
// flat in WindowSize, batch B/op scales linearly with it.

func benchArray(b *testing.B) *sram.Array {
	b.Helper()
	profile, err := silicon.ATmega32u4()
	if err != nil {
		b.Fatal(err)
	}
	a, err := sram.New(profile, rng.New(7))
	if err != nil {
		b.Fatal(err)
	}
	return a
}

func benchStreaming(b *testing.B, window int) {
	a := benchArray(b)
	bits := a.Profile().ReadWindowBits()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev := NewDevice(nil)
		if _, err := Drain(Sampler(bits, window, a.PowerUpWindowInto), dev); err != nil {
			b.Fatal(err)
		}
		if _, err := dev.Result(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchBatch(b *testing.B, window int) {
	a := benchArray(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws := make([]*bitvec.Vector, window)
		for k := range ws {
			w, err := a.PowerUpWindow()
			if err != nil {
				b.Fatal(err)
			}
			ws[k] = w
		}
		ref := ws[0].Clone()
		if _, err := metrics.WithinClassHD(ref, ws); err != nil {
			b.Fatal(err)
		}
		if _, err := metrics.FractionalHW(ws); err != nil {
			b.Fatal(err)
		}
		counts, n, err := entropy.OneCounts(ws)
		if err != nil {
			b.Fatal(err)
		}
		probs, err := entropy.ProbabilitiesFromCounts(counts, n)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := entropy.NoiseMinEntropy(probs); err != nil {
			b.Fatal(err)
		}
		if _, err := entropy.StableCellRatio(counts, n); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeviceWindowStreaming250(b *testing.B)  { benchStreaming(b, 250) }
func BenchmarkDeviceWindowStreaming1000(b *testing.B) { benchStreaming(b, 1000) }
func BenchmarkDeviceWindowBatch250(b *testing.B)      { benchBatch(b, 250) }
func BenchmarkDeviceWindowBatch1000(b *testing.B)     { benchBatch(b, 1000) }
