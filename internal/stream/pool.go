package stream

import (
	"errors"
	"sync"
	"sync/atomic"
)

// Pool is the campaign engine's shared scheduler: a bounded worker pool
// that both execution paths submit their window jobs to. The direct path
// submits one job per device; the rig path submits a single simulation
// pump. One Pool per campaign makes Config.Workers govern all evaluation
// parallelism regardless of path.
//
// The bound is held by one semaphore owned by the Pool, not per Run call:
// concurrent Run calls on the same Pool share the worker budget. That is
// what lets a condition sweep run many grid points at once — and the
// assessment service run many concurrent campaigns — while the total
// sampling parallelism stays at one bound.
type Pool struct {
	workers int
	sem     chan struct{} // nil when unbounded

	// Budget accounting: how many jobs hold a slot right now, and the
	// highest that count has ever been. The high-watermark is what lets a
	// multi-campaign service assert that its single global budget was
	// never exceeded no matter how many campaigns ran concurrently.
	inflight atomic.Int64
	high     atomic.Int64
}

// NewPool returns a pool running at most workers jobs concurrently across
// all Run calls. workers <= 0 means one goroutine per submitted job (the
// historical direct-path default).
func NewPool(workers int) *Pool {
	p := &Pool{workers: workers}
	if workers > 0 {
		p.sem = make(chan struct{}, workers)
	}
	return p
}

// Workers returns the configured concurrency bound (0 = unbounded).
func (p *Pool) Workers() int { return p.workers }

// InFlight returns the number of jobs currently executing (holding a
// worker slot) across all concurrent Run calls.
func (p *Pool) InFlight() int { return int(p.inflight.Load()) }

// MaxInFlight returns the highest concurrent job count the pool has ever
// reached — the accounting a service's pool-budget test asserts against:
// for a bounded pool it can never exceed Workers().
func (p *Pool) MaxInFlight() int { return int(p.high.Load()) }

// SplitBudget divides a total worker budget across parts — the
// per-shard pool budgeting of a sharded campaign, where each worker
// process runs its own Pool but the campaign's -workers bound should
// govern the TOTAL sampling parallelism across all of them, and the
// per-campaign budgeting of a multi-campaign service admitting work
// against one global budget. A non-positive total leaves every part
// unbounded (the single-process default); otherwise every part gets
// total/parts with the remainder spread over the first parts, and never
// less than 1 (a zero share would mean "unbounded" to the receiving pool
// and overshoot the budget, so a budget smaller than the part count
// inflates to one worker per part).
func SplitBudget(total, parts int) []int {
	if parts < 1 {
		return nil
	}
	out := make([]int, parts)
	if total <= 0 {
		return out
	}
	base, rem := total/parts, total%parts
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
		if out[i] < 1 {
			out[i] = 1
		}
	}
	return out
}

// Run executes the jobs, at most Workers at a time (shared with any
// concurrent Run on the same Pool), waits for all of them and returns the
// joined errors (nil when every job succeeded).
func (p *Pool) Run(jobs ...func() error) error {
	if len(jobs) == 0 {
		return nil
	}
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i, job := range jobs {
		wg.Add(1)
		go func(i int, job func() error) {
			defer wg.Done()
			if p.sem != nil {
				p.sem <- struct{}{}
				defer func() { <-p.sem }()
			}
			n := p.inflight.Add(1)
			for {
				high := p.high.Load()
				if n <= high || p.high.CompareAndSwap(high, n) {
					break
				}
			}
			defer p.inflight.Add(-1)
			errs[i] = job()
		}(i, job)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// RunSlotted executes the jobs like Run, but additionally hands each job
// an exclusive slot index in [0, slots): no two concurrently executing
// jobs ever see the same slot. Slots are how a lazy source keeps O(slots)
// scratch state (reusable chip arrays) for an O(jobs) device population —
// each job rebuilds its device into the per-slot scratch it was handed.
//
// slots caps the call's own concurrency in addition to the pool bound: at
// most min(slots, Workers) jobs of this call run at once (other concurrent
// Run calls still share the pool semaphore). slots <= 0 defaults to the
// pool bound, or to len(jobs) on an unbounded pool.
func (p *Pool) RunSlotted(slots int, jobs ...func(slot int) error) error {
	if len(jobs) == 0 {
		return nil
	}
	if slots <= 0 {
		slots = p.workers
	}
	if slots <= 0 || slots > len(jobs) {
		slots = len(jobs)
	}
	free := make(chan int, slots)
	for s := 0; s < slots; s++ {
		free <- s
	}
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i, job := range jobs {
		wg.Add(1)
		go func(i int, job func(int) error) {
			defer wg.Done()
			// Slot first, then the pool semaphore: a job holding a slot but
			// queued on the semaphore blocks only its own call's siblings,
			// never another Run call's budget.
			slot := <-free
			defer func() { free <- slot }()
			if p.sem != nil {
				p.sem <- struct{}{}
				defer func() { <-p.sem }()
			}
			n := p.inflight.Add(1)
			for {
				high := p.high.Load()
				if n <= high || p.high.CompareAndSwap(high, n) {
					break
				}
			}
			defer p.inflight.Add(-1)
			errs[i] = job(slot)
		}(i, job)
	}
	wg.Wait()
	return errors.Join(errs...)
}
