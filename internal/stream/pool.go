package stream

import (
	"errors"
	"sync"
)

// Pool is the campaign engine's shared scheduler: a bounded worker pool
// that both execution paths submit their window jobs to. The direct path
// submits one job per device; the rig path submits a single simulation
// pump. One Pool per campaign makes Config.Workers govern all evaluation
// parallelism regardless of path.
//
// The bound is held by one semaphore owned by the Pool, not per Run call:
// concurrent Run calls on the same Pool share the worker budget. That is
// what lets a condition sweep run many grid points at once while the
// total sampling parallelism stays at the configured bound.
type Pool struct {
	workers int
	sem     chan struct{} // nil when unbounded
}

// NewPool returns a pool running at most workers jobs concurrently across
// all Run calls. workers <= 0 means one goroutine per submitted job (the
// historical direct-path default).
func NewPool(workers int) *Pool {
	p := &Pool{workers: workers}
	if workers > 0 {
		p.sem = make(chan struct{}, workers)
	}
	return p
}

// Workers returns the configured concurrency bound (0 = unbounded).
func (p *Pool) Workers() int { return p.workers }

// SplitBudget divides a total worker budget across parts — the
// per-shard pool budgeting of a sharded campaign, where each worker
// process runs its own Pool but the campaign's -workers bound should
// govern the TOTAL sampling parallelism across all of them. A
// non-positive total leaves every part unbounded (the single-process
// default); otherwise every part gets total/parts with the remainder
// spread over the first parts, and never less than 1 (a zero share would
// mean "unbounded" to the receiving pool and overshoot the budget, so a
// budget smaller than the shard count inflates to one worker per shard).
func SplitBudget(total, parts int) []int {
	if parts < 1 {
		return nil
	}
	out := make([]int, parts)
	if total <= 0 {
		return out
	}
	base, rem := total/parts, total%parts
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
		if out[i] < 1 {
			out[i] = 1
		}
	}
	return out
}

// Run executes the jobs, at most Workers at a time (shared with any
// concurrent Run on the same Pool), waits for all of them and returns the
// joined errors (nil when every job succeeded).
func (p *Pool) Run(jobs ...func() error) error {
	if len(jobs) == 0 {
		return nil
	}
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i, job := range jobs {
		wg.Add(1)
		go func(i int, job func() error) {
			defer wg.Done()
			if p.sem != nil {
				p.sem <- struct{}{}
				defer func() { <-p.sem }()
			}
			errs[i] = job()
		}(i, job)
	}
	wg.Wait()
	return errors.Join(errs...)
}
