package stream

import (
	"errors"
	"sync"
)

// Pool is the campaign engine's shared scheduler: a bounded worker pool
// that both execution paths submit their window jobs to. The direct path
// submits one job per device; the rig path submits a single simulation
// pump. One Pool per campaign makes Config.Workers govern all evaluation
// parallelism regardless of path.
type Pool struct {
	workers int
}

// NewPool returns a pool running at most workers jobs concurrently.
// workers <= 0 means one goroutine per submitted job (the historical
// direct-path default).
func NewPool(workers int) *Pool { return &Pool{workers: workers} }

// Workers returns the configured concurrency bound (0 = unbounded).
func (p *Pool) Workers() int { return p.workers }

// Run executes the jobs, at most Workers at a time, waits for all of them
// and returns the joined errors (nil when every job succeeded).
func (p *Pool) Run(jobs ...func() error) error {
	if len(jobs) == 0 {
		return nil
	}
	limit := p.workers
	if limit <= 0 || limit > len(jobs) {
		limit = len(jobs)
	}
	sem := make(chan struct{}, limit)
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i, job := range jobs {
		wg.Add(1)
		go func(i int, job func() error) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[i] = job()
		}(i, job)
	}
	wg.Wait()
	return errors.Join(errs...)
}
