package stream

import (
	"math"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/rng"
)

// buildCross fills a Cross with n deterministic pseudo-random patterns.
func buildCross(t *testing.T, n, bits int) *Cross {
	t.Helper()
	c := NewCross()
	r := rng.New(42)
	for d := 0; d < n; d++ {
		v := bitvec.New(bits)
		src := r.Derive(uint64(d))
		for i := 0; i < bits; i++ {
			v.Set(i, src.Float64() < 0.5)
		}
		if err := c.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// TestCrossLargeMeanMatchesPairwise: the column-count mean of the
// fleet-scale path equals the exact all-pairs mean (same population,
// forced down both paths) to float tolerance, and the sampled min/max
// bracket within the exact extremes.
func TestCrossLargeMeanMatchesPairwise(t *testing.T) {
	const n, bits = 300, 256
	c := buildCross(t, n, bits)
	exact, err := c.Result() // n < cap: all-pairs path
	if err != nil {
		t.Fatal(err)
	}
	large, err := c.resultLarge()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact.BCHDMean-large.BCHDMean) > 1e-12 {
		t.Fatalf("BCHD mean: pairwise %v, columnar %v", exact.BCHDMean, large.BCHDMean)
	}
	if math.Abs(exact.PUFHmin-large.PUFHmin) > 1e-12 {
		t.Fatalf("PUF Hmin: pairwise %v, columnar %v", exact.PUFHmin, large.PUFHmin)
	}
	if large.BCHDMin < exact.BCHDMin || large.BCHDMax > exact.BCHDMax {
		t.Fatalf("sampled min/max (%v,%v) outside exact extremes (%v,%v)",
			large.BCHDMin, large.BCHDMax, exact.BCHDMin, exact.BCHDMax)
	}
}

// TestCrossLargePathDeterministic: above the cap Result takes the
// columnar path and two identical populations produce identical bits.
func TestCrossLargePathDeterministic(t *testing.T) {
	const n, bits = crossPairwiseCap + 10, 64
	a, err := buildCross(t, n, bits).Result()
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildCross(t, n, bits).Result()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("large-population cross fold not deterministic: %+v vs %+v", a, b)
	}
	if a.BCHDMean < 0.4 || a.BCHDMean > 0.6 {
		t.Fatalf("BCHD mean %v implausible for uniform random patterns", a.BCHDMean)
	}
}
