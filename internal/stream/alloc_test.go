package stream

import (
	"testing"

	"repro/internal/bitvec"
)

// The steady-state per-measurement path must be allocation-free: one
// campaign is ~10^5 power-ups per device, and a single alloc per Add
// (or per window finalisation) multiplies into millions of objects.
// These tests pin the contract with the allocation counter, so a
// regression fails here before it shows up in the gated benchmarks.

// allocPatterns builds two distinct patterns of the given width.
func allocPatterns(bits int) (*bitvec.Vector, *bitvec.Vector) {
	a, b := bitvec.New(bits), bitvec.New(bits)
	for i := 0; i < bits; i += 3 {
		a.Set(i, true)
	}
	for i := 0; i < bits; i += 5 {
		b.Set(i, true)
	}
	return a, b
}

func assertZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	if n := testing.AllocsPerRun(100, f); n != 0 {
		t.Errorf("%s: %v allocs per call in steady state, want 0", name, n)
	}
}

func TestAccumulatorAddsDoNotAllocate(t *testing.T) {
	const bits = 512
	m1, m2 := allocPatterns(bits)

	wchd, err := NewWCHD(m1.Clone())
	if err != nil {
		t.Fatal(err)
	}
	fhw := NewFHW()
	ones := NewOnes()
	flips := NewFlips()
	dev := NewDevice(nil)
	for _, sink := range []Sink{wchd, fhw, ones, flips, dev} {
		// Warm past the first-measurement state (reference adoption,
		// count-vector sizing) — that is a once-per-window cost.
		if err := sink.Add(m1); err != nil {
			t.Fatal(err)
		}
	}
	ms := []*bitvec.Vector{m1, m2}
	i := 0
	for name, sink := range map[string]Sink{
		"WCHD.Add": wchd, "FHW.Add": fhw, "Ones.Add": ones, "Flips.Add": flips, "Device.Add": dev,
	} {
		assertZeroAllocs(t, name, func() {
			if err := sink.Add(ms[i%2]); err != nil {
				t.Fatal(err)
			}
			i++
		})
	}
}

func TestOnesFinalisersDoNotAllocate(t *testing.T) {
	m1, m2 := allocPatterns(512)
	ones := NewOnes()
	for _, m := range []*bitvec.Vector{m1, m2, m1} {
		if err := ones.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	// First Probabilities call sizes the scratch; later calls reuse it.
	if _, err := ones.Probabilities(); err != nil {
		t.Fatal(err)
	}
	assertZeroAllocs(t, "Ones.Probabilities", func() {
		if _, err := ones.Probabilities(); err != nil {
			t.Fatal(err)
		}
	})
	assertZeroAllocs(t, "Ones.NoiseMinEntropy", func() {
		if _, err := ones.NoiseMinEntropy(); err != nil {
			t.Fatal(err)
		}
	})
	mask := bitvec.New(512)
	assertZeroAllocs(t, "Ones.StableMaskInto", func() {
		if err := ones.StableMaskInto(mask); err != nil {
			t.Fatal(err)
		}
	})
	assertZeroAllocs(t, "Ones.StableRatio", func() {
		if _, err := ones.StableRatio(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestStableMaskIntoMatchesStableMask: the reuse form and the
// allocating form are the same classification bit for bit, including a
// dirty destination being fully overwritten.
func TestStableMaskIntoMatchesStableMask(t *testing.T) {
	for _, bits := range []int{1, 63, 64, 65, 200} {
		m1, m2 := allocPatterns(bits)
		ones := NewOnes()
		for _, m := range []*bitvec.Vector{m1, m2, m1, m1} {
			if err := ones.Add(m); err != nil {
				t.Fatal(err)
			}
		}
		want, err := ones.StableMask()
		if err != nil {
			t.Fatal(err)
		}
		got := bitvec.New(bits)
		got.SetAll(true) // a dirty destination must be fully overwritten
		if err := ones.StableMaskInto(got); err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("bits=%d: StableMaskInto differs from StableMask", bits)
		}
		if err := ones.StableMaskInto(bitvec.New(bits + 1)); err == nil {
			t.Fatalf("bits=%d: mis-sized mask accepted", bits)
		}
	}
	if err := NewOnes().StableMaskInto(bitvec.New(8)); err != ErrNoMeasurements {
		t.Fatalf("empty accumulator: err = %v, want ErrNoMeasurements", err)
	}
}
