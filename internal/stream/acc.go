package stream

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"repro/internal/bitvec"
	"repro/internal/entropy"
	"repro/internal/metrics"
)

// ErrNoMeasurements is returned when a result is requested from an
// accumulator that has consumed nothing.
var ErrNoMeasurements = errors.New("stream: no measurements")

// WCHD accumulates the within-class Hamming distance of a measurement
// stream against a fixed reference pattern (§IV-B1). It keeps a running
// sum, maximum and count — the per-measurement series of the batch
// pipeline is never materialised. The floating-point accumulation order
// matches metrics.WithinClassHD exactly, so Mean and Max are bit-identical
// to the batch result.
type WCHD struct {
	ref   *bitvec.Vector
	sum   float64
	max   float64
	count int
}

// NewWCHD returns a WCHD accumulator against ref.
func NewWCHD(ref *bitvec.Vector) (*WCHD, error) {
	if ref == nil {
		return nil, errors.New("stream: nil reference")
	}
	return &WCHD{ref: ref}, nil
}

// Add folds one measurement.
func (a *WCHD) Add(m *bitvec.Vector) error {
	f, err := a.ref.FractionalHammingDistance(m)
	if err != nil {
		return fmt.Errorf("stream: measurement %d: %w", a.count, err)
	}
	a.sum += f
	if f > a.max {
		a.max = f
	}
	a.count++
	return nil
}

// Count returns the number of measurements consumed.
func (a *WCHD) Count() int { return a.count }

// Mean returns the mean fractional Hamming distance versus the reference.
func (a *WCHD) Mean() (float64, error) {
	if a.count == 0 {
		return 0, ErrNoMeasurements
	}
	return a.sum / float64(a.count), nil
}

// Max returns the worst per-measurement distance seen.
func (a *WCHD) Max() (float64, error) {
	if a.count == 0 {
		return 0, ErrNoMeasurements
	}
	return a.max, nil
}

// FHW accumulates the fractional Hamming weight of a measurement stream
// (§IV-A3), mirroring metrics.FractionalHW's accumulation order.
type FHW struct {
	sum   float64
	count int
}

// NewFHW returns an empty weight accumulator.
func NewFHW() *FHW { return &FHW{} }

// Add folds one measurement.
func (a *FHW) Add(m *bitvec.Vector) error {
	a.sum += m.FractionalHammingWeight()
	a.count++
	return nil
}

// Count returns the number of measurements consumed.
func (a *FHW) Count() int { return a.count }

// Mean returns the mean fractional Hamming weight.
func (a *FHW) Mean() (float64, error) {
	if a.count == 0 {
		return 0, ErrNoMeasurements
	}
	return a.sum / float64(a.count), nil
}

// Ones accumulates per-cell one-counts — the streaming form of
// entropy.OneProbabilities — from which the noise min-entropy (§IV-C2)
// and the one-probability map derive. State is one int per cell,
// independent of the window size.
type Ones struct {
	counts []int
	count  int
	probs  []float64 // Probabilities scratch, reused across calls
}

// NewOnes returns a one-count accumulator; the cell count is fixed by the
// first measurement.
func NewOnes() *Ones { return &Ones{} }

// Add folds one measurement.
func (a *Ones) Add(m *bitvec.Vector) error {
	if a.counts == nil {
		a.counts = make([]int, m.Len())
	}
	if m.Len() != len(a.counts) {
		return fmt.Errorf("stream: measurement %d has %d bits, want %d", a.count, m.Len(), len(a.counts))
	}
	for wi, w := range m.Words() {
		base := wi * 64
		for ; w != 0; w &= w - 1 {
			a.counts[base+bits.TrailingZeros64(w)]++
		}
	}
	a.count++
	return nil
}

// Count returns the number of measurements consumed.
func (a *Ones) Count() int { return a.count }

// Probabilities returns the empirical one-probability of every cell,
// computed exactly as entropy.OneProbabilities computes it (same
// count-times-reciprocal rounding). The returned slice is the
// accumulator's own scratch, overwritten by the next Probabilities (or
// NoiseMinEntropy) call and by nothing else; callers that keep it past
// that must copy it. Steady state allocates nothing.
func (a *Ones) Probabilities() ([]float64, error) {
	if a.count == 0 {
		return nil, ErrNoMeasurements
	}
	probs, err := entropy.ProbabilitiesFromCountsInto(a.probs, a.counts, a.count)
	if err != nil {
		return nil, err
	}
	a.probs = probs
	return probs, nil
}

// NoiseMinEntropy returns the window's average per-bit noise min-entropy,
// delegating the final fold to the entropy oracle over the streaming
// one-probabilities.
func (a *Ones) NoiseMinEntropy() (float64, error) {
	probs, err := a.Probabilities()
	if err != nil {
		return 0, err
	}
	return entropy.NoiseMinEntropy(probs)
}

// StableRatio returns the fraction of stable cells: cells whose one-count
// is exactly 0 or exactly the measurement count. The comparison is
// count-based, in lockstep with entropy.StableCellRatio — the historical
// probability comparison missed fully-stable cells for window sizes n
// where float64(n)*(1/float64(n)) != 1 (e.g. n = 49).
func (a *Ones) StableRatio() (float64, error) {
	if a.count == 0 {
		return 0, ErrNoMeasurements
	}
	return entropy.StableCellRatio(a.counts, a.count)
}

// StableMask returns a fresh bitmap marking the stable cells — cells
// whose one-count is exactly 0 or exactly the measurement count, the same
// count-based classification as StableRatio. Callers on a per-window hot
// path (the condition sweep's cross-corner harvest) use StableMaskInto
// with a reused mask instead; this form allocates per call.
func (a *Ones) StableMask() (*bitvec.Vector, error) {
	if a.count == 0 {
		return nil, ErrNoMeasurements
	}
	mask := bitvec.New(len(a.counts))
	if err := a.StableMaskInto(mask); err != nil {
		return nil, err
	}
	return mask, nil
}

// StableMaskInto writes the stable-cell bitmap into dst, which must
// have one bit per accumulated cell — StableMask without the per-call
// allocation, packed a word at a time. Every bit of dst is overwritten.
func (a *Ones) StableMaskInto(dst *bitvec.Vector) error {
	if a.count == 0 {
		return ErrNoMeasurements
	}
	if dst.Len() != len(a.counts) {
		return fmt.Errorf("stream: mask has %d bits, want %d", dst.Len(), len(a.counts))
	}
	var word uint64
	var nbits uint
	wi := 0
	for _, c := range a.counts {
		if c == 0 || c == a.count {
			word |= 1 << nbits
		}
		nbits++
		if nbits == 64 {
			dst.SetWord(wi, word)
			wi++
			word, nbits = 0, 0
		}
	}
	if nbits > 0 {
		dst.SetWord(wi, word)
	}
	return nil
}

// Flips tracks, per cell, whether the cell ever changed value across the
// stream: a one-word-per-64-cells bitmap updated with one XOR-OR pass per
// measurement. A cell is stable over a window exactly when it never flips,
// so the bitmap yields the stable-cell tally (§IV-C1) as an exact integer
// count. Since the stable-cell oracle became count-based (a cell is stable
// iff its one-count is 0 or n, which holds iff it never flips),
// Flips.StableRatio and Ones.StableRatio agree exactly for every window
// size; Flips additionally locates the flipping cells.
type Flips struct {
	prev    *bitvec.Vector
	changed *bitvec.Vector
	count   int
}

// NewFlips returns an empty flip tracker.
func NewFlips() *Flips { return &Flips{} }

// Add folds one measurement.
func (a *Flips) Add(m *bitvec.Vector) error {
	if a.prev == nil {
		a.prev = m.Clone()
		a.changed = bitvec.New(m.Len())
		a.count++
		return nil
	}
	if err := a.changed.OrDiffInPlace(m, a.prev); err != nil {
		return fmt.Errorf("stream: measurement %d: %w", a.count, err)
	}
	if err := a.prev.CopyFrom(m); err != nil {
		return err
	}
	a.count++
	return nil
}

// Count returns the number of measurements consumed.
func (a *Flips) Count() int { return a.count }

// Changed returns the bitmap of cells that flipped at least once. The
// returned vector is owned by the accumulator.
func (a *Flips) Changed() (*bitvec.Vector, error) {
	if a.count == 0 {
		return nil, ErrNoMeasurements
	}
	return a.changed, nil
}

// StableRatio returns the fraction of cells that never flipped.
func (a *Flips) StableRatio() (float64, error) {
	if a.count == 0 {
		return 0, ErrNoMeasurements
	}
	n := a.changed.Len()
	if n == 0 {
		return 0, ErrNoMeasurements
	}
	return float64(n-a.changed.HammingWeight()) / float64(n), nil
}

// DeviceResult carries every per-device window metric of Table I.
type DeviceResult struct {
	WCHDMean    float64 // mean FHD vs the device's reference
	WCHDMax     float64 // worst single measurement
	FHW         float64 // mean fractional Hamming weight
	NoiseHmin   float64 // empirical noise min-entropy
	StableRatio float64 // fraction of never-flipping cells
	Count       int     // measurements consumed
}

// Device is the composite per-device window accumulator: a reference
// pattern, the window's first pattern, and the WCHD/FHW/Ones
// accumulators, all updated in one pass. Total state is O(array size).
type Device struct {
	ref   *bitvec.Vector // month-0 reference; adopted from the first measurement when nil
	first *bitvec.Vector // first measurement of THIS window (BCHD/PUF input)
	wchd  *WCHD
	fhw   *FHW
	ones  *Ones
}

// NewDevice returns a device accumulator. ref is the device's enrollment
// reference; pass nil to adopt the first measurement of the stream as the
// reference (the month-0 convention of §IV-B1).
func NewDevice(ref *bitvec.Vector) *Device {
	d := &Device{fhw: NewFHW(), ones: NewOnes()}
	if ref != nil {
		d.ref = ref
		d.wchd, _ = NewWCHD(ref)
	}
	return d
}

// Add folds one measurement. The vector is not retained (the first
// measurement and an adopted reference are cloned).
func (d *Device) Add(m *bitvec.Vector) error {
	if d.first == nil {
		d.first = m.Clone()
		if d.ref == nil {
			d.ref = d.first
			var err error
			if d.wchd, err = NewWCHD(d.ref); err != nil {
				return err
			}
		}
	}
	if err := d.wchd.Add(m); err != nil {
		return err
	}
	if err := d.fhw.Add(m); err != nil {
		return err
	}
	return d.ones.Add(m)
}

// Count returns the number of measurements consumed.
func (d *Device) Count() int { return d.fhw.Count() }

// Ref returns the reference pattern in use (nil before the first
// measurement when none was supplied).
func (d *Device) Ref() *bitvec.Vector { return d.ref }

// First returns the first measurement of the window (the BCHD/PUF-entropy
// input of §IV-B2), or nil before any measurement.
func (d *Device) First() *bitvec.Vector { return d.first }

// StableMask returns a fresh bitmap of the window's stable cells (see
// Ones.StableMask).
func (d *Device) StableMask() (*bitvec.Vector, error) { return d.ones.StableMask() }

// StableMaskInto writes the window's stable-cell bitmap into dst
// without allocating (see Ones.StableMaskInto).
func (d *Device) StableMaskInto(dst *bitvec.Vector) error { return d.ones.StableMaskInto(dst) }

// Result finalises the window metrics.
func (d *Device) Result() (DeviceResult, error) {
	if d.Count() == 0 {
		return DeviceResult{}, ErrNoMeasurements
	}
	mean, err := d.wchd.Mean()
	if err != nil {
		return DeviceResult{}, err
	}
	max, err := d.wchd.Max()
	if err != nil {
		return DeviceResult{}, err
	}
	fhw, err := d.fhw.Mean()
	if err != nil {
		return DeviceResult{}, err
	}
	noise, err := d.ones.NoiseMinEntropy()
	if err != nil {
		return DeviceResult{}, err
	}
	stable, err := d.ones.StableRatio()
	if err != nil {
		return DeviceResult{}, err
	}
	return DeviceResult{
		WCHDMean:    mean,
		WCHDMax:     max,
		FHW:         fhw,
		NoiseHmin:   noise,
		StableRatio: stable,
		Count:       d.Count(),
	}, nil
}

// CrossResult carries the cross-device uniqueness metrics of one window.
type CrossResult struct {
	BCHDMean float64
	BCHDMin  float64
	BCHDMax  float64
	PUFHmin  float64
}

// Cross accumulates the cross-device metrics: between-class Hamming
// distance and PUF min-entropy over one pattern per device (§IV-B2,
// §IV-B4). State is O(devices × array size) — one retained pattern per
// device, independent of the window size; the final pairwise fold
// delegates to the metrics/entropy oracles so the summation order (and
// hence the result bits) matches the batch pipeline exactly.
type Cross struct {
	firsts []*bitvec.Vector
}

// NewCross returns an empty cross-device accumulator.
func NewCross() *Cross { return &Cross{} }

// Add records one device's window-first pattern. The vector is retained;
// pass an owned copy (Device.First already returns one).
func (c *Cross) Add(first *bitvec.Vector) error {
	if first == nil {
		return errors.New("stream: nil pattern")
	}
	c.firsts = append(c.firsts, first)
	return nil
}

// Devices returns the number of patterns recorded.
func (c *Cross) Devices() int { return len(c.firsts) }

// crossPairwiseCap is the largest population evaluated with the exact
// all-pairs BCHD fold. Above it the O(devices²) pair walk (and its
// Pairwise slice) would dominate a fleet-screening campaign — 50k devices
// is 1.25 billion pairs — so Result switches to the column-count path:
// the exact same mean via per-bit one-counts in O(devices × bits), with
// min/max over the deterministic adjacent-pair sample. Every historical
// campaign size sits far below the cap, so published results keep their
// bits.
const crossPairwiseCap = 2048

// Result finalises BCHD and PUF min-entropy. It needs >= 2 devices.
func (c *Cross) Result() (CrossResult, error) {
	if len(c.firsts) > crossPairwiseCap {
		return c.resultLarge()
	}
	bc, err := metrics.BetweenClassHD(c.firsts)
	if err != nil {
		return CrossResult{}, err
	}
	puf, err := entropy.PUFMinEntropy(c.firsts)
	if err != nil {
		return CrossResult{}, err
	}
	return CrossResult{BCHDMean: bc.Mean, BCHDMin: bc.Min, BCHDMax: bc.Max, PUFHmin: puf}, nil
}

// resultLarge is the fleet-scale cross fold. The pairwise BCHD mean has a
// closed form over per-bit one-counts: a bit position where c of n devices
// read 1 disagrees in exactly c·(n−c) of the n·(n−1)/2 pairs, so
// mean = Σ_pos c(n−c) / (pairs · bits) — identical in exact arithmetic to
// the pair walk, summed in a fixed order (positions ascending) so any two
// runs of the same population agree bit-for-bit. Min/Max, which have no
// columnar form, come from the adjacent-pair sample (i, i+1) — n−1
// deterministic pairs in device order, which all execution layouts share
// because the engine folds devices in index order.
func (c *Cross) resultLarge() (CrossResult, error) {
	n := len(c.firsts)
	nbits := c.firsts[0].Len()
	words := len(c.firsts[0].Words())
	counts := make([]int, 64*words)
	for _, v := range c.firsts {
		if v.Len() != nbits {
			return CrossResult{}, fmt.Errorf("stream: cross pattern has %d bits, want %d", v.Len(), nbits)
		}
		for wi, w := range v.Words() {
			base := wi << 6
			for w != 0 {
				b := bits.TrailingZeros64(w)
				w &= w - 1
				counts[base+b]++
			}
		}
	}
	var disagree float64
	for _, cnt := range counts[:nbits] {
		disagree += float64(cnt) * float64(n-cnt)
	}
	pairs := float64(n) * float64(n-1) / 2
	mean := disagree / (pairs * float64(nbits))

	min, max := 1.0, 0.0
	for i := 0; i+1 < n; i++ {
		f, err := c.firsts[i].FractionalHammingDistance(c.firsts[i+1])
		if err != nil {
			return CrossResult{}, fmt.Errorf("stream: cross pair (%d,%d): %w", i, i+1, err)
		}
		if f < min {
			min = f
		}
		if f > max {
			max = f
		}
	}

	// PUF min-entropy's probability estimate is c/n per position — reuse
	// the counts instead of re-walking the patterns.
	var hmin float64
	for _, cnt := range counts[:nbits] {
		p := float64(cnt) / float64(n)
		m := p
		if 1-p > m {
			m = 1 - p
		}
		if m < 1 {
			hmin += -math.Log2(m)
		}
	}
	hmin /= float64(nbits)
	return CrossResult{BCHDMean: mean, BCHDMin: min, BCHDMax: max, PUFHmin: hmin}, nil
}
