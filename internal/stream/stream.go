// Package stream is the one-pass measurement pipeline of the campaign
// engine. It replaces the collect-then-evaluate flow — which materialised
// every 1,000-measurement evaluation window as a []*bitvec.Vector before
// the metric packages made a second pass over it — with Sources that yield
// power-up measurements one at a time and Accumulators that fold each
// measurement into bounded state the moment it is produced.
//
// Memory per device-window is O(array size): a reference pattern, the
// first pattern of the window, one per-cell one-count vector and one
// per-cell flip bitmap — independent of how many measurements the window
// holds. The batch functions in internal/metrics and internal/entropy
// remain the oracle: every accumulator is tested to produce bit-identical
// results to its batch counterpart on identical inputs (identical float
// operation order, identical integer tallies).
//
// Both campaign paths of internal/core — direct sampling and the full rig
// simulation — are Sources feeding the same accumulators, scheduled by one
// Pool.
package stream

import (
	"errors"
	"io"

	"repro/internal/bitvec"
)

// Source yields power-up measurements one at a time. Next returns io.EOF
// after the last measurement. The returned vector may share storage with
// subsequent Next results (sources are free to reuse a scratch buffer);
// consumers that retain a measurement must Clone it.
type Source interface {
	Next() (*bitvec.Vector, error)
}

// Sink consumes measurements one at a time. All accumulators implement it.
type Sink interface {
	Add(m *bitvec.Vector) error
}

// Sampler returns a Source yielding n measurements of the given bit width,
// each produced by fill writing into a reused scratch vector. It is the
// direct campaign path's source: fill is typically sram.(*Array).
// PowerUpWindowInto, so a whole window is streamed with a single vector
// allocation.
func Sampler(bits, n int, fill func(dst *bitvec.Vector) error) Source {
	return &sampler{scratch: bitvec.New(bits), left: n, fill: fill}
}

type sampler struct {
	scratch *bitvec.Vector
	left    int
	fill    func(dst *bitvec.Vector) error
}

func (s *sampler) Next() (*bitvec.Vector, error) {
	if s.left <= 0 {
		return nil, io.EOF
	}
	if err := s.fill(s.scratch); err != nil {
		return nil, err
	}
	s.left--
	return s.scratch, nil
}

// Slice returns a Source replaying an in-memory measurement set, used by
// archive replay and by the equivalence tests.
func Slice(ms []*bitvec.Vector) Source { return &slice{ms: ms} }

type slice struct {
	ms []*bitvec.Vector
	i  int
}

func (s *slice) Next() (*bitvec.Vector, error) {
	if s.i >= len(s.ms) {
		return nil, io.EOF
	}
	m := s.ms[s.i]
	s.i++
	if m == nil {
		return nil, errors.New("stream: nil measurement")
	}
	return m, nil
}

// Drain pulls src to exhaustion, feeding every measurement to each sink in
// order. It returns the number of measurements consumed.
func Drain(src Source, sinks ...Sink) (int, error) {
	n := 0
	for {
		m, err := src.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		for _, s := range sinks {
			if err := s.Add(m); err != nil {
				return n, err
			}
		}
		n++
	}
}
