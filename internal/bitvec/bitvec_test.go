package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 8192} {
		v := New(n)
		if v.Len() != n {
			t.Fatalf("Len = %d, want %d", v.Len(), n)
		}
		if w := v.HammingWeight(); w != 0 {
			t.Fatalf("n=%d: weight of new vector = %d, want 0", n, w)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetGet(t *testing.T) {
	v := New(130)
	idx := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for _, i := range idx {
		v.Set(i, true)
	}
	for _, i := range idx {
		if !v.Get(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if got := v.HammingWeight(); got != len(idx) {
		t.Fatalf("weight = %d, want %d", got, len(idx))
	}
	for _, i := range idx {
		v.Set(i, false)
	}
	if got := v.HammingWeight(); got != 0 {
		t.Fatalf("weight after clear = %d, want 0", got)
	}
}

func TestGetOutOfRangePanics(t *testing.T) {
	v := New(10)
	for _, i := range []int{-1, 10, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Get(%d) did not panic", i)
				}
			}()
			v.Get(i)
		}()
	}
}

func TestBit(t *testing.T) {
	v := New(8)
	v.Set(3, true)
	if v.Bit(3) != 1 || v.Bit(4) != 0 {
		t.Fatalf("Bit: got %d,%d want 1,0", v.Bit(3), v.Bit(4))
	}
}

func TestFromBools(t *testing.T) {
	b := []bool{true, false, true, true, false, false, false, true, true}
	v := FromBools(b)
	if v.Len() != len(b) {
		t.Fatalf("Len = %d, want %d", v.Len(), len(b))
	}
	for i, x := range b {
		if v.Get(i) != x {
			t.Errorf("bit %d = %v, want %v", i, v.Get(i), x)
		}
	}
	got := v.Bools()
	for i := range b {
		if got[i] != b[i] {
			t.Errorf("Bools[%d] = %v, want %v", i, got[i], b[i])
		}
	}
}

func TestBytesRoundTrip(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65, 8192, 8191} {
		v := New(n)
		for i := 0; i < n; i++ {
			v.Set(i, rnd.Intn(2) == 1)
		}
		data := v.Bytes()
		if len(data) != (n+7)/8 {
			t.Fatalf("n=%d: Bytes len = %d", n, len(data))
		}
		u, err := FromBytes(data, n)
		if err != nil {
			t.Fatalf("n=%d: FromBytes: %v", n, err)
		}
		if !v.Equal(u) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
	}
}

func TestFromBytesErrors(t *testing.T) {
	if _, err := FromBytes([]byte{0xff}, 16); err == nil {
		t.Error("short buffer accepted")
	}
	// 0xFF for a 4-bit vector has dirty padding.
	if _, err := FromBytes([]byte{0xff}, 4); err == nil {
		t.Error("dirty padding accepted")
	}
	if v, err := FromBytes([]byte{0x0f}, 4); err != nil || v.HammingWeight() != 4 {
		t.Errorf("clean padding rejected: v=%v err=%v", v, err)
	}
}

func TestHexRoundTrip(t *testing.T) {
	v := New(12)
	v.Set(0, true)
	v.Set(11, true)
	s := v.Hex()
	u, err := ParseHex(s, 12)
	if err != nil {
		t.Fatalf("ParseHex: %v", err)
	}
	if !v.Equal(u) {
		t.Fatalf("hex round trip: got %v want %v", u, v)
	}
	if _, err := ParseHex("zz", 8); err == nil {
		t.Error("invalid hex accepted")
	}
}

func TestHammingDistance(t *testing.T) {
	v := New(100)
	u := New(100)
	for i := 0; i < 10; i++ {
		u.Set(i*7, true)
	}
	d, err := v.HammingDistance(u)
	if err != nil {
		t.Fatal(err)
	}
	if d != 10 {
		t.Fatalf("HD = %d, want 10", d)
	}
	f, err := v.FractionalHammingDistance(u)
	if err != nil {
		t.Fatal(err)
	}
	if f != 0.1 {
		t.Fatalf("FHD = %v, want 0.1", f)
	}
}

func TestLengthMismatch(t *testing.T) {
	v, u := New(10), New(11)
	if _, err := v.HammingDistance(u); err == nil {
		t.Error("HammingDistance: no error on mismatch")
	}
	if _, err := v.Xor(u); err == nil {
		t.Error("Xor: no error on mismatch")
	}
	if _, err := v.And(u); err == nil {
		t.Error("And: no error on mismatch")
	}
	if _, err := v.Or(u); err == nil {
		t.Error("Or: no error on mismatch")
	}
	if err := v.XorInPlace(u); err == nil {
		t.Error("XorInPlace: no error on mismatch")
	}
	if _, err := v.CountDiffWindow(u, 0, 5); err == nil {
		t.Error("CountDiffWindow: no error on mismatch")
	}
}

func TestXorProperties(t *testing.T) {
	// HD(v,u) == HW(v XOR u), and v XOR v == 0.
	f := func(a, b [16]byte) bool {
		v, err1 := FromBytes(a[:], 128)
		u, err2 := FromBytes(b[:], 128)
		if err1 != nil || err2 != nil {
			return false
		}
		x, err := v.Xor(u)
		if err != nil {
			return false
		}
		d, err := v.HammingDistance(u)
		if err != nil {
			return false
		}
		if x.HammingWeight() != d {
			return false
		}
		self, err := v.Xor(v)
		if err != nil {
			return false
		}
		return self.HammingWeight() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXorInPlaceMatchesXor(t *testing.T) {
	f := func(a, b [8]byte) bool {
		v, _ := FromBytes(a[:], 64)
		u, _ := FromBytes(b[:], 64)
		want, _ := v.Xor(u)
		if err := v.XorInPlace(u); err != nil {
			return false
		}
		return v.Equal(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeMorganProperty(t *testing.T) {
	// NOT(a AND b) == NOT(a) OR NOT(b)
	f := func(a, b [9]byte) bool {
		v, _ := FromBytes(a[:], 72)
		u, _ := FromBytes(b[:], 72)
		and, _ := v.And(u)
		left := and.Not()
		right, _ := v.Not().Or(u.Not())
		return left.Equal(right)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNotClearsTail(t *testing.T) {
	v := New(10)
	nv := v.Not()
	if nv.HammingWeight() != 10 {
		t.Fatalf("NOT of zero 10-bit vector has weight %d, want 10", nv.HammingWeight())
	}
	if nv.tailDirty() {
		t.Fatal("Not left dirty tail bits")
	}
}

func TestSetAll(t *testing.T) {
	v := New(67)
	v.SetAll(true)
	if v.HammingWeight() != 67 {
		t.Fatalf("SetAll(true): weight %d, want 67", v.HammingWeight())
	}
	v.SetAll(false)
	if v.HammingWeight() != 0 {
		t.Fatalf("SetAll(false): weight %d, want 0", v.HammingWeight())
	}
}

func TestSlice(t *testing.T) {
	v := New(100)
	for i := 10; i < 20; i++ {
		v.Set(i, true)
	}
	s := v.Slice(10, 20)
	if s.Len() != 10 || s.HammingWeight() != 10 {
		t.Fatalf("Slice: len=%d weight=%d", s.Len(), s.HammingWeight())
	}
	s2 := v.Slice(0, 10)
	if s2.HammingWeight() != 0 {
		t.Fatalf("Slice[0,10): weight=%d, want 0", s2.HammingWeight())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid slice did not panic")
			}
		}()
		v.Slice(50, 40)
	}()
}

func TestConcat(t *testing.T) {
	a := FromBools([]bool{true, false, true})
	b := FromBools([]bool{false, true})
	c := Concat(a, b)
	want := []bool{true, false, true, false, true}
	if c.Len() != 5 {
		t.Fatalf("Concat len = %d", c.Len())
	}
	for i, w := range want {
		if c.Get(i) != w {
			t.Errorf("bit %d = %v, want %v", i, c.Get(i), w)
		}
	}
}

func TestOnesIndices(t *testing.T) {
	v := New(200)
	want := []int{0, 5, 63, 64, 100, 199}
	for _, i := range want {
		v.Set(i, true)
	}
	got := v.OnesIndices()
	if len(got) != len(want) {
		t.Fatalf("OnesIndices len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("OnesIndices[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestFractionalHammingWeight(t *testing.T) {
	v := New(8)
	v.Set(0, true)
	v.Set(1, true)
	if f := v.FractionalHammingWeight(); f != 0.25 {
		t.Fatalf("FHW = %v, want 0.25", f)
	}
	if f := New(0).FractionalHammingWeight(); f != 0 {
		t.Fatalf("empty FHW = %v, want 0", f)
	}
}

func TestCountDiffWindow(t *testing.T) {
	v := New(64)
	u := New(64)
	u.Set(5, true)
	u.Set(40, true)
	d, err := v.CountDiffWindow(u, 0, 32)
	if err != nil || d != 1 {
		t.Fatalf("window [0,32): d=%d err=%v, want 1", d, err)
	}
	d, err = v.CountDiffWindow(u, 0, 64)
	if err != nil || d != 2 {
		t.Fatalf("window [0,64): d=%d err=%v, want 2", d, err)
	}
	if _, err := v.CountDiffWindow(u, 10, 5); err == nil {
		t.Error("invalid window accepted")
	}
}

func TestSetWord(t *testing.T) {
	v := New(70)
	v.SetWord(0, ^uint64(0))
	v.SetWord(1, ^uint64(0))
	if got := v.HammingWeight(); got != 70 {
		t.Fatalf("weight = %d, want 70 (tail must be cleared)", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	v := New(64)
	v.Set(1, true)
	u := v.Clone()
	u.Set(2, true)
	if v.Get(2) {
		t.Fatal("Clone shares storage with original")
	}
	if !u.Get(1) {
		t.Fatal("Clone lost bit")
	}
}

func TestStringTruncation(t *testing.T) {
	v := New(8)
	v.Set(0, true)
	if s := v.String(); s != "10000000" {
		t.Fatalf("String = %q", s)
	}
	long := New(1000)
	if s := long.String(); len(s) > 1200 {
		t.Fatalf("String of long vector not truncated: %d chars", len(s))
	}
}

func BenchmarkHammingDistance8K(b *testing.B) {
	v := New(8192)
	u := New(8192)
	for i := 0; i < 8192; i += 3 {
		u.Set(i, true)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := v.HammingDistance(u); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHammingWeight8K(b *testing.B) {
	v := New(8192)
	for i := 0; i < 8192; i += 2 {
		v.Set(i, true)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.HammingWeight()
	}
}

// naiveSlice is the bit-by-bit reference the word-wise Slice must match.
func naiveSlice(v *Vector, from, to int) *Vector {
	out := New(to - from)
	for i := from; i < to; i++ {
		if v.Get(i) {
			out.Set(i-from, true)
		}
	}
	return out
}

// naiveConcat is the bit-by-bit reference the word-wise Concat must match.
func naiveConcat(v, u *Vector) *Vector {
	out := New(v.Len() + u.Len())
	for i := 0; i < v.Len(); i++ {
		out.Set(i, v.Get(i))
	}
	for i := 0; i < u.Len(); i++ {
		out.Set(v.Len()+i, u.Get(i))
	}
	return out
}

func randomVector(n int, seed uint64) *Vector {
	v := New(n)
	x := seed
	for i := 0; i < n; i++ {
		// xorshift64 — deterministic bit soup exercising every word lane.
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		v.Set(i, x&1 == 1)
	}
	return v
}

// TestSliceWordwiseMatchesNaive sweeps slice boundaries across word
// edges (offsets 0, mid-word, word-aligned, full-vector) and checks the
// word-wise kernel against the bit-by-bit oracle, including the tail
// invariant of the result.
func TestSliceWordwiseMatchesNaive(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 127, 128, 200, 1265} {
		v := randomVector(n, uint64(n)*2654435761)
		for _, from := range []int{0, 1, 63, 64, 65, n / 2, n - 1, n} {
			if from < 0 || from > n {
				continue
			}
			for _, to := range []int{from, from + 1, from + 63, from + 64, from + 65, n} {
				if to < from || to > n {
					continue
				}
				got, want := v.Slice(from, to), naiveSlice(v, from, to)
				if !got.Equal(want) {
					t.Fatalf("Slice(%d,%d) of %d bits differs from oracle", from, to, n)
				}
				if got.tailDirty() {
					t.Fatalf("Slice(%d,%d) of %d bits has a dirty tail", from, to, n)
				}
			}
		}
	}
}

// TestConcatWordwiseMatchesNaive sweeps both operand lengths across word
// boundaries and checks the word-wise kernel against the oracle.
func TestConcatWordwiseMatchesNaive(t *testing.T) {
	for _, vn := range []int{0, 1, 5, 63, 64, 65, 115, 128, 1265} {
		for _, un := range []int{0, 1, 63, 64, 65, 150, 1265} {
			v := randomVector(vn, uint64(vn)*40503+1)
			u := randomVector(un, uint64(un)*9176+7)
			got, want := Concat(v, u), naiveConcat(v, u)
			if !got.Equal(want) {
				t.Fatalf("Concat(%d,%d) differs from oracle", vn, un)
			}
			if got.tailDirty() {
				t.Fatalf("Concat(%d,%d) has a dirty tail", vn, un)
			}
		}
	}
}

// TestSliceConcatAllocs pins the allocation count of the reconstruction
// hot path: one Vector header plus one word slice per result, nothing
// proportional to the bit count.
func TestSliceConcatAllocs(t *testing.T) {
	v := randomVector(1265, 99)
	u := randomVector(115, 3)
	var sink *Vector
	if got := testing.AllocsPerRun(200, func() { sink = v.Slice(3, 1200) }); got > 2 {
		t.Errorf("Slice allocates %v objects, want <= 2", got)
	}
	if got := testing.AllocsPerRun(200, func() { sink = Concat(v, u) }); got > 2 {
		t.Errorf("Concat allocates %v objects, want <= 2", got)
	}
	_ = sink
}

func BenchmarkSlice1265(b *testing.B) {
	v := randomVector(8192, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.Slice(17, 17+1265)
	}
}

func BenchmarkConcat1265(b *testing.B) {
	v := randomVector(1265, 1)
	u := randomVector(115, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Concat(v, u)
	}
}
