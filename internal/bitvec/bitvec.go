// Package bitvec implements fixed-length packed bit vectors.
//
// A Vector is the fundamental measurement payload of the repository: every
// SRAM power-up pattern read out by the measurement harness is stored as one
// Vector. The package provides the Hamming-space operations (weight,
// distance, XOR) that all PUF quality metrics in the paper are built from,
// plus serialisation to bytes and hex for the JSON measurement archive.
package bitvec

import (
	"encoding/hex"
	"errors"
	"fmt"
	"math/bits"
	"strings"
)

// ErrLengthMismatch is returned by binary operations on vectors of
// different lengths.
var ErrLengthMismatch = errors.New("bitvec: length mismatch")

const wordBits = 64

// Vector is a fixed-length sequence of bits packed into 64-bit words.
// Bit i of the vector is bit (i % 64) of word (i / 64). The zero value is an
// empty vector of length 0.
type Vector struct {
	words []uint64
	n     int
}

// New returns a zeroed Vector of n bits. It panics if n is negative.
func New(n int) *Vector {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return &Vector{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromBools builds a Vector whose bit i is 1 exactly when b[i] is true.
func FromBools(b []bool) *Vector {
	v := New(len(b))
	for i, x := range b {
		if x {
			v.words[i/wordBits] |= 1 << (uint(i) % wordBits)
		}
	}
	return v
}

// FromBytes builds a Vector of n bits from a little-endian byte packing
// (bit i is bit i%8 of data[i/8]). It returns an error if data is too short
// to hold n bits or if trailing padding bits in the final byte are non-zero.
func FromBytes(data []byte, n int) (*Vector, error) {
	need := (n + 7) / 8
	if len(data) < need {
		return nil, fmt.Errorf("bitvec: need %d bytes for %d bits, got %d", need, n, len(data))
	}
	v := New(n)
	for i := 0; i < need; i++ {
		v.words[i/8] |= uint64(data[i]) << (8 * (uint(i) % 8))
	}
	// Verify padding above bit n is clean, then force-clear it so internal
	// invariants hold regardless.
	if v.tailDirty() {
		return nil, errors.New("bitvec: non-zero padding bits beyond length")
	}
	return v, nil
}

// FromWords builds a Vector of n bits from its packed 64-bit word
// representation (bit i is bit i%64 of words[i/64]) — the storage layout
// Words exposes, and the payload layout of the binary record codec. It
// returns an error if the word count does not match n or if padding bits
// beyond n are non-zero.
func FromWords(words []uint64, n int) (*Vector, error) {
	v := New(n)
	if err := v.LoadWords(words); err != nil {
		return nil, err
	}
	return v, nil
}

// LoadWords overwrites v's contents from a packed word slice without
// allocating — the decode-into-scratch path of the binary record codec.
// It returns an error if the word count does not match v's length or if
// padding bits beyond the length are non-zero (corrupt input must never
// violate the tail invariant the Hamming kernels rely on).
func (v *Vector) LoadWords(words []uint64) error {
	if len(words) != len(v.words) {
		return fmt.Errorf("bitvec: need %d words for %d bits, got %d", len(v.words), v.n, len(words))
	}
	copy(v.words, words)
	if v.tailDirty() {
		v.clearTail()
		return errors.New("bitvec: non-zero padding bits beyond length")
	}
	return nil
}

// ParseHex decodes a Vector of n bits from the hex encoding produced by Hex.
func ParseHex(s string, n int) (*Vector, error) {
	data, err := hex.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("bitvec: %w", err)
	}
	return FromBytes(data, n)
}

// tailDirty reports whether any bit at position >= n is set.
func (v *Vector) tailDirty() bool {
	if v.n%wordBits == 0 {
		return false
	}
	last := v.words[len(v.words)-1]
	mask := (uint64(1) << (uint(v.n) % wordBits)) - 1
	return last&^mask != 0
}

// clearTail zeroes all bits at position >= n.
func (v *Vector) clearTail() {
	if v.n%wordBits == 0 || len(v.words) == 0 {
		return
	}
	mask := (uint64(1) << (uint(v.n) % wordBits)) - 1
	v.words[len(v.words)-1] &= mask
}

// Len returns the number of bits in the vector.
func (v *Vector) Len() int { return v.n }

// Get returns bit i as a boolean. It panics if i is out of range.
func (v *Vector) Get(i int) bool {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
	return v.words[i/wordBits]>>(uint(i)%wordBits)&1 == 1
}

// Bit returns bit i as 0 or 1. It panics if i is out of range.
func (v *Vector) Bit(i int) int {
	if v.Get(i) {
		return 1
	}
	return 0
}

// Set sets bit i to b. It panics if i is out of range.
func (v *Vector) Set(i int, b bool) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
	if b {
		v.words[i/wordBits] |= 1 << (uint(i) % wordBits)
	} else {
		v.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
	}
}

// SetAll sets every bit to b.
func (v *Vector) SetAll(b bool) {
	var w uint64
	if b {
		w = ^uint64(0)
	}
	for i := range v.words {
		v.words[i] = w
	}
	v.clearTail()
}

// Clone returns a deep copy of v.
func (v *Vector) Clone() *Vector {
	w := New(v.n)
	copy(w.words, v.words)
	return w
}

// Equal reports whether v and u have identical length and contents.
func (v *Vector) Equal(u *Vector) bool {
	if v.n != u.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != u.words[i] {
			return false
		}
	}
	return true
}

// HammingWeight returns the number of 1 bits.
func (v *Vector) HammingWeight() int {
	w := 0
	for _, x := range v.words {
		w += bits.OnesCount64(x)
	}
	return w
}

// FractionalHammingWeight returns HammingWeight divided by the length.
// It returns 0 for an empty vector.
func (v *Vector) FractionalHammingWeight() float64 {
	if v.n == 0 {
		return 0
	}
	return float64(v.HammingWeight()) / float64(v.n)
}

// HammingDistance returns the number of positions at which v and u differ.
func (v *Vector) HammingDistance(u *Vector) (int, error) {
	if v.n != u.n {
		return 0, fmt.Errorf("%w: %d vs %d bits", ErrLengthMismatch, v.n, u.n)
	}
	d := 0
	for i := range v.words {
		d += bits.OnesCount64(v.words[i] ^ u.words[i])
	}
	return d, nil
}

// FractionalHammingDistance returns HammingDistance divided by the length.
func (v *Vector) FractionalHammingDistance(u *Vector) (float64, error) {
	d, err := v.HammingDistance(u)
	if err != nil {
		return 0, err
	}
	if v.n == 0 {
		return 0, nil
	}
	return float64(d) / float64(v.n), nil
}

// Xor returns the bitwise XOR of v and u as a new vector.
func (v *Vector) Xor(u *Vector) (*Vector, error) {
	if v.n != u.n {
		return nil, fmt.Errorf("%w: %d vs %d bits", ErrLengthMismatch, v.n, u.n)
	}
	out := New(v.n)
	for i := range v.words {
		out.words[i] = v.words[i] ^ u.words[i]
	}
	return out, nil
}

// XorInPlace sets v = v XOR u.
func (v *Vector) XorInPlace(u *Vector) error {
	if v.n != u.n {
		return fmt.Errorf("%w: %d vs %d bits", ErrLengthMismatch, v.n, u.n)
	}
	for i := range v.words {
		v.words[i] ^= u.words[i]
	}
	return nil
}

// And returns the bitwise AND of v and u as a new vector.
func (v *Vector) And(u *Vector) (*Vector, error) {
	if v.n != u.n {
		return nil, fmt.Errorf("%w: %d vs %d bits", ErrLengthMismatch, v.n, u.n)
	}
	out := New(v.n)
	for i := range v.words {
		out.words[i] = v.words[i] & u.words[i]
	}
	return out, nil
}

// Or returns the bitwise OR of v and u as a new vector.
func (v *Vector) Or(u *Vector) (*Vector, error) {
	if v.n != u.n {
		return nil, fmt.Errorf("%w: %d vs %d bits", ErrLengthMismatch, v.n, u.n)
	}
	out := New(v.n)
	for i := range v.words {
		out.words[i] = v.words[i] | u.words[i]
	}
	return out, nil
}

// AndInPlace sets v = v AND u without allocating — the mask-intersection
// update of the cross-condition stable-cell fold.
func (v *Vector) AndInPlace(u *Vector) error {
	if v.n != u.n {
		return fmt.Errorf("%w: %d vs %d bits", ErrLengthMismatch, v.n, u.n)
	}
	for i := range v.words {
		v.words[i] &= u.words[i]
	}
	return nil
}

// OrDiffInPlace sets v |= a XOR b without allocating — the streaming
// flip-bitmap update: every position where a and b disagree is marked in v.
func (v *Vector) OrDiffInPlace(a, b *Vector) error {
	if v.n != a.n || v.n != b.n {
		return fmt.Errorf("%w: %d vs %d vs %d bits", ErrLengthMismatch, v.n, a.n, b.n)
	}
	for i := range v.words {
		v.words[i] |= a.words[i] ^ b.words[i]
	}
	return nil
}

// CopyFrom overwrites v's contents with u's without allocating.
func (v *Vector) CopyFrom(u *Vector) error {
	if v.n != u.n {
		return fmt.Errorf("%w: %d vs %d bits", ErrLengthMismatch, v.n, u.n)
	}
	copy(v.words, u.words)
	return nil
}

// Not returns the bitwise complement of v as a new vector.
func (v *Vector) Not() *Vector {
	out := New(v.n)
	for i := range v.words {
		out.words[i] = ^v.words[i]
	}
	out.clearTail()
	return out
}

// Slice returns a copy of bits [from, to) as a new vector.
// It panics if the range is invalid.
func (v *Vector) Slice(from, to int) *Vector {
	if from < 0 || to > v.n || from > to {
		panic(fmt.Sprintf("bitvec: invalid slice [%d,%d) of %d bits", from, to, v.n))
	}
	out := New(to - from)
	if to == from {
		return out
	}
	wi, off := from/wordBits, uint(from)%wordBits
	if off == 0 {
		copy(out.words, v.words[wi:wi+len(out.words)])
	} else {
		for i := range out.words {
			w := v.words[wi+i] >> off
			if wi+i+1 < len(v.words) {
				w |= v.words[wi+i+1] << (wordBits - off)
			}
			out.words[i] = w
		}
	}
	out.clearTail()
	return out
}

// Concat returns the concatenation v || u as a new vector.
func Concat(v, u *Vector) *Vector {
	out := New(v.n + u.n)
	copy(out.words, v.words)
	if u.n == 0 {
		return out
	}
	wi, off := v.n/wordBits, uint(v.n)%wordBits
	if off == 0 {
		copy(out.words[wi:], u.words)
		return out
	}
	// v's tail invariant guarantees bits >= v.n of out.words[wi] are zero,
	// so u's words can be OR-shifted in; u's own clean tail keeps bits
	// beyond out.n zero.
	for i, w := range u.words {
		out.words[wi+i] |= w << off
		if wi+i+1 < len(out.words) {
			out.words[wi+i+1] = w >> (wordBits - off)
		}
	}
	return out
}

// Bytes returns the little-endian byte packing of v
// (bit i is bit i%8 of byte i/8). Padding bits are zero.
func (v *Vector) Bytes() []byte {
	out := make([]byte, (v.n+7)/8)
	for i := range out {
		out[i] = byte(v.words[i/8] >> (8 * (uint(i) % 8)))
	}
	return out
}

// Hex returns the hexadecimal encoding of Bytes.
func (v *Vector) Hex() string { return hex.EncodeToString(v.Bytes()) }

// Bools returns the vector expanded to a boolean slice.
func (v *Vector) Bools() []bool {
	out := make([]bool, v.n)
	for i := range out {
		out[i] = v.Get(i)
	}
	return out
}

// OnesIndices returns the positions of all 1 bits in increasing order.
func (v *Vector) OnesIndices() []int {
	out := make([]int, 0, v.HammingWeight())
	for wi, w := range v.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &= w - 1
		}
	}
	return out
}

// String renders short vectors as a 0/1 string and long vectors as a
// truncated summary; intended for debugging output.
func (v *Vector) String() string {
	const maxShow = 128
	var sb strings.Builder
	n := v.n
	trunc := false
	if n > maxShow {
		n = maxShow
		trunc = true
	}
	for i := 0; i < n; i++ {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	if trunc {
		fmt.Fprintf(&sb, "... (%d bits, weight %d)", v.n, v.HammingWeight())
	}
	return sb.String()
}

// Words exposes the underlying word slice for read-only fast paths
// (e.g. bulk sampling). Callers must not modify the returned slice.
func (v *Vector) Words() []uint64 { return v.words }

// SetWord stores the given 64-bit word at word index wi. Bits beyond the
// vector length in the final word are cleared. It panics if wi is out of
// range. This is the bulk fast path used by the SRAM power-up sampler.
func (v *Vector) SetWord(wi int, w uint64) {
	v.words[wi] = w
	if wi == len(v.words)-1 {
		v.clearTail()
	}
}

// CountDiffWindow returns the Hamming distance between v and u restricted
// to bit positions [from, to).
func (v *Vector) CountDiffWindow(u *Vector, from, to int) (int, error) {
	if v.n != u.n {
		return 0, fmt.Errorf("%w: %d vs %d bits", ErrLengthMismatch, v.n, u.n)
	}
	if from < 0 || to > v.n || from > to {
		return 0, fmt.Errorf("bitvec: invalid window [%d,%d) of %d bits", from, to, v.n)
	}
	d := 0
	for i := from; i < to; i++ {
		if v.Get(i) != u.Get(i) {
			d++
		}
	}
	return d, nil
}
