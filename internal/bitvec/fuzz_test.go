package bitvec

import (
	"testing"
)

// vectorFromData builds an n-bit vector whose bit i is bit i%8 of
// data[i/8] — a mask-and-build that cannot fail, unlike FromBytes, which
// rejects dirty padding.
func vectorFromData(data []byte, n int) *Vector {
	bools := make([]bool, n)
	for i := 0; i < n; i++ {
		bools[i] = data[i/8]>>(uint(i)%8)&1 == 1
	}
	return FromBools(bools)
}

// FuzzInPlaceOps holds the allocation-free primitives of the streaming
// pipeline (OrDiffInPlace, CopyFrom, AndInPlace) to their bit-by-bit
// reference semantics, including the tail invariant: padding bits beyond
// the vector length stay zero, which the Hex/ParseHex round trip rejects
// if violated.
func FuzzInPlaceOps(f *testing.F) {
	f.Add([]byte{0xff}, []byte{0x00}, []byte{0xaa}, 8)
	f.Add([]byte{0xde, 0xad}, []byte{0xbe, 0xef}, []byte{0x00, 0x00}, 13)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, []byte{9, 8, 7, 6, 5, 4, 3, 2, 1}, []byte{0, 0, 0, 0, 0, 0, 0, 0, 0}, 65)
	f.Add([]byte{0x80}, []byte{0x80}, []byte{0x80}, 1)
	f.Fuzz(func(t *testing.T, ab, bb, vb []byte, n int) {
		max := len(ab)
		if len(bb) < max {
			max = len(bb)
		}
		if len(vb) < max {
			max = len(vb)
		}
		max *= 8
		if n <= 0 || n > max {
			t.Skip()
		}
		a := vectorFromData(ab, n)
		b := vectorFromData(bb, n)
		v := vectorFromData(vb, n)

		// OrDiffInPlace: v |= a XOR b, bit by bit.
		want := make([]bool, n)
		for i := 0; i < n; i++ {
			want[i] = v.Get(i) || (a.Get(i) != b.Get(i))
		}
		if err := v.OrDiffInPlace(a, b); err != nil {
			t.Fatalf("OrDiffInPlace: %v", err)
		}
		for i := 0; i < n; i++ {
			if v.Get(i) != want[i] {
				t.Fatalf("OrDiffInPlace bit %d = %v, want %v", i, v.Get(i), want[i])
			}
		}
		assertCleanTail(t, v, "OrDiffInPlace")

		// The inputs must not have been touched.
		if !a.Equal(vectorFromData(ab, n)) || !b.Equal(vectorFromData(bb, n)) {
			t.Fatal("OrDiffInPlace modified an input vector")
		}

		// CopyFrom: exact overwrite.
		w := New(n)
		if err := w.CopyFrom(a); err != nil {
			t.Fatalf("CopyFrom: %v", err)
		}
		if !w.Equal(a) {
			t.Fatal("CopyFrom result differs from source")
		}
		assertCleanTail(t, w, "CopyFrom")

		// AndInPlace: w &= b, bit by bit.
		for i := 0; i < n; i++ {
			want[i] = a.Get(i) && b.Get(i)
		}
		if err := w.AndInPlace(b); err != nil {
			t.Fatalf("AndInPlace: %v", err)
		}
		for i := 0; i < n; i++ {
			if w.Get(i) != want[i] {
				t.Fatalf("AndInPlace bit %d = %v, want %v", i, w.Get(i), want[i])
			}
		}
		assertCleanTail(t, w, "AndInPlace")

		// Length mismatches fail typed, never panic.
		if n > 1 {
			short := New(n - 1)
			if err := short.OrDiffInPlace(a, b); err == nil {
				t.Fatal("OrDiffInPlace accepted mismatched lengths")
			}
			if err := short.CopyFrom(a); err == nil {
				t.Fatal("CopyFrom accepted mismatched lengths")
			}
			if err := short.AndInPlace(a); err == nil {
				t.Fatal("AndInPlace accepted mismatched lengths")
			}
		}
	})
}

// assertCleanTail asserts padding bits beyond the length are zero by
// round-tripping through the serialisation, which rejects dirty padding.
func assertCleanTail(t *testing.T, v *Vector, op string) {
	t.Helper()
	back, err := ParseHex(v.Hex(), v.Len())
	if err != nil {
		t.Fatalf("%s left dirty padding: %v", op, err)
	}
	if !back.Equal(v) {
		t.Fatalf("%s: hex round trip differs", op)
	}
}
