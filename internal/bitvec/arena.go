package bitvec

import (
	"encoding/binary"
	"fmt"
)

// Arena is a slab allocator for Vectors: one contiguous []uint64 word
// slab plus a block of Vector headers, carved into fixed-length views by
// Claim. It exists for bulk decode paths (the indexed archive segment
// decoder) where thousands of records per segment would otherwise cost
// two heap allocations each; with an arena the whole segment costs zero
// steady-state allocations once the slab has grown to the segment's
// size.
//
// Ownership contract: every Vector returned by Claim aliases the arena's
// slab and stays valid only until the next Reset. Callers that hand the
// views to a consumer must guarantee the consumer is done (or has Cloned
// what it retains) before resetting — the same reuse rule as the engine
// Sink contract. The arena itself is not safe for concurrent use; use
// one arena per goroutine.
type Arena struct {
	slab []uint64
	vecs []Vector
	w, v int // next free slab word / vector header
}

// Reset discards all outstanding views and guarantees capacity for at
// least words slab words and vecs vectors, growing the backing storage
// if needed (never shrinking). After Reset, previously claimed views
// alias reused memory and must not be touched.
func (a *Arena) Reset(words, vecs int) {
	if words > cap(a.slab) {
		a.slab = make([]uint64, words)
	}
	a.slab = a.slab[:cap(a.slab)]
	if vecs > cap(a.vecs) {
		a.vecs = make([]Vector, vecs)
	}
	a.vecs = a.vecs[:cap(a.vecs)]
	a.w, a.v = 0, 0
}

// Claim carves an n-bit view out of the slab. The view's contents are
// UNSPECIFIED (reused memory is not zeroed) — callers must overwrite
// every word, e.g. via SetWord, before reading. It fails when the arena
// capacity from the last Reset is exhausted, so a mis-sized decode loop
// surfaces as an error instead of silently invalidating live views
// through reallocation.
func (a *Arena) Claim(n int) (*Vector, error) {
	if n < 0 {
		return nil, fmt.Errorf("bitvec: arena claim of negative length %d", n)
	}
	nw := (n + wordBits - 1) / wordBits
	if a.w+nw > len(a.slab) {
		return nil, fmt.Errorf("bitvec: arena slab exhausted: %d of %d words free, need %d", len(a.slab)-a.w, len(a.slab), nw)
	}
	if a.v >= len(a.vecs) {
		return nil, fmt.Errorf("bitvec: arena vector headers exhausted after %d claims", a.v)
	}
	v := &a.vecs[a.v]
	a.v++
	v.words = a.slab[a.w : a.w+nw : a.w+nw]
	v.n = n
	a.w += nw
	return v, nil
}

// ClaimFromLE carves an n-bit view and fills it from little-endian
// 64-bit words — the binary record codec's payload layout — in one
// bulk pass (Claim + a tight word loop, no per-word method calls: this
// is the hot inner loop of indexed segment replay). data must hold at
// least ceil(n/64) words; padding bits beyond n must be zero, matching
// the codec's canonical-form rule, and dirty padding is rejected.
func (a *Arena) ClaimFromLE(data []byte, n int) (*Vector, error) {
	v, err := a.Claim(n)
	if err != nil {
		return nil, err
	}
	w := v.words
	if len(data) < 8*len(w) {
		return nil, fmt.Errorf("bitvec: %d payload bytes cannot hold %d bits", len(data), n)
	}
	data = data[:8*len(w)] // one bounds check for the whole fill
	if littleEndianHost {
		// Wire layout == memory layout: the fill is one memmove.
		copy(wordBytes(w), data)
	} else {
		for i := range w {
			w[i] = binary.LittleEndian.Uint64(data[8*i:])
		}
	}
	if tail := uint(n) % wordBits; tail != 0 && w[len(w)-1]>>tail != 0 {
		return nil, fmt.Errorf("bitvec: non-zero padding bits beyond length %d", n)
	}
	return v, nil
}

// WordsFree returns the slab words still available for Claim.
func (a *Arena) WordsFree() int { return len(a.slab) - a.w }
