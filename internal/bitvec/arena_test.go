package bitvec

import "testing"

func TestArenaClaim(t *testing.T) {
	var a Arena
	a.Reset(4, 3)
	v1, err := a.Claim(100) // 2 words
	if err != nil {
		t.Fatal(err)
	}
	v2, err := a.Claim(65) // 2 words
	if err != nil {
		t.Fatal(err)
	}
	if v1.Len() != 100 || v2.Len() != 65 {
		t.Fatalf("lengths: %d, %d", v1.Len(), v2.Len())
	}
	// Views are writable and independent.
	v1.SetWord(0, ^uint64(0))
	v1.SetWord(1, ^uint64(0))
	v2.SetWord(0, 0)
	v2.SetWord(1, 0)
	if v1.HammingWeight() != 100 {
		t.Fatalf("v1 weight %d, want 100 (tail must be cleared by SetWord)", v1.HammingWeight())
	}
	if v2.HammingWeight() != 0 {
		t.Fatalf("v2 weight %d, want 0", v2.HammingWeight())
	}
	if _, err := a.Claim(1); err == nil {
		t.Fatal("claim beyond slab capacity succeeded")
	}
}

func TestArenaVectorHeadersExhausted(t *testing.T) {
	var a Arena
	a.Reset(10, 1)
	if _, err := a.Claim(1); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Claim(1); err == nil {
		t.Fatal("claim beyond vector-header capacity succeeded")
	}
}

func TestArenaResetReuses(t *testing.T) {
	var a Arena
	a.Reset(8, 4)
	v, err := a.Claim(64)
	if err != nil {
		t.Fatal(err)
	}
	v.SetWord(0, 0xdeadbeef)
	// A smaller Reset must not shrink capacity and must rewind the
	// cursors so the same storage is claimable again.
	a.Reset(2, 1)
	if a.WordsFree() != 8 {
		t.Fatalf("WordsFree after smaller Reset = %d, want 8", a.WordsFree())
	}
	w, err := a.Claim(64)
	if err != nil {
		t.Fatal(err)
	}
	if &w.words[0] != &v.words[0] {
		t.Fatal("Reset did not rewind the slab")
	}
}

func TestArenaZeroLengthClaim(t *testing.T) {
	var a Arena
	a.Reset(0, 1)
	v, err := a.Claim(0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 0 {
		t.Fatalf("len %d, want 0", v.Len())
	}
	if _, err := a.Claim(-1); err == nil {
		t.Fatal("negative claim succeeded")
	}
}
