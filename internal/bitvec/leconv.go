package bitvec

import "unsafe"

// littleEndianHost reports whether the host stores multi-byte integers
// little-endian, in which case the wire layout of the binary record
// codec (little-endian uint64 words) matches the Vector's in-memory
// word layout exactly and bulk decode degenerates to one memmove. On a
// big-endian host every bulk path falls back to the per-word
// byte-order loop; correctness never depends on this flag.
var littleEndianHost = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// wordBytes views w's backing array as raw bytes. Callers must gate on
// littleEndianHost — on a big-endian host the byte view would not be
// the codec's wire layout.
func wordBytes(w []uint64) []byte {
	if len(w) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&w[0])), 8*len(w))
}
