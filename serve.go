package sramaging

import (
	"net/http"

	"repro/internal/serve"
)

// Re-exported assessment-service types: the admission contract and typed
// client of cmd/assessd, so external programs submit, stream and resume
// long-lived campaigns without importing internal packages.
type (
	// ServeSpec is a service campaign submission: the JSON body of
	// POST /v1/campaigns, validated (into ErrConfig) before admission.
	ServeSpec = serve.Spec
	// ServeCondition is a spec's environmental operating point.
	ServeCondition = serve.Condition
	// ServeConfig parameterises an in-process assessment service: data
	// directory, global worker budget, concurrent-campaign bound.
	ServeConfig = serve.Config
	// ServeManager owns a service's campaigns — embed one behind
	// ServeHandler to run the service inside another program.
	ServeManager = serve.Manager
	// ServeEvent is one entry of a campaign's NDJSON result stream.
	ServeEvent = serve.Event
	// ServeCampaignState is a campaign's queryable status snapshot.
	ServeCampaignState = serve.CampaignState
	// ServeClient is the typed HTTP client of an assessd instance.
	ServeClient = serve.Client
)

// Campaign lifecycle statuses, as reported by the service.
const (
	ServeStatusSubmitted    = serve.StatusSubmitted
	ServeStatusRunning      = serve.StatusRunning
	ServeStatusCheckpointed = serve.StatusCheckpointed
	ServeStatusResumed      = serve.StatusResumed
	ServeStatusDone         = serve.StatusDone
	ServeStatusFailed       = serve.StatusFailed
	ServeStatusCancelled    = serve.StatusCancelled
)

// NewServeManager starts an assessment service manager: it recovers and
// resumes every interrupted campaign found in the data directory, then
// accepts submissions. Drain it with its Close.
func NewServeManager(cfg ServeConfig) (*ServeManager, error) {
	return serve.NewManager(cfg)
}

// ServeHandler returns the service's HTTP API over a manager — mount it
// on any mux or server.
func ServeHandler(m *ServeManager) http.Handler {
	return serve.Handler(m)
}
