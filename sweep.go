package sramaging

import (
	"context"
	"fmt"

	"repro/internal/aging"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sweep"
)

// Re-exported condition-sweep types. A sweep runs one full assessment per
// environmental condition point — same profile, same seed, so every
// corner measures the same chips in a different oven — and assembles the
// cross-condition comparison series on top of the per-point Results.
type (
	// Scenario is one named environmental condition (temperature in
	// degrees Celsius, supply voltage).
	Scenario = aging.Scenario
	// ConditionGrid is a cartesian temperature × voltage grid; its
	// Points expand to the sweep's scenarios.
	ConditionGrid = sweep.Grid
	// SweepResults is the outcome of RunSweep: every condition point's
	// full campaign Results plus the cross-condition comparison.
	SweepResults = sweep.Results
	// SweepPoint is one condition point's campaign outcome.
	SweepPoint = sweep.PointResult
	// SweepComparison carries the cross-condition series: worst-corner
	// WCHD/FHW per month, the stable-cell intersection across corners,
	// and per-metric temperature-sensitivity slopes.
	SweepComparison = sweep.Comparison
	// SweepProgress is one completed month of one condition point,
	// delivered through WithSweepProgress as it finalises.
	SweepProgress = sweep.Progress
)

// Slope-metric keys of SweepComparison.TempSlope.
const (
	SlopeWCHD      = sweep.SlopeWCHD
	SlopeFHW       = sweep.SlopeFHW
	SlopeStable    = sweep.SlopeStable
	SlopeNoiseHmin = sweep.SlopeNoiseHmin
	SlopeBCHDMean  = sweep.SlopeBCHDMean
	SlopePUFHmin   = sweep.SlopePUFHmin
)

// Predefined condition scenarios.
var (
	// NominalRoomTemp is the paper's two-year test condition: room
	// temperature, nominal 5 V supply. Sweeping only this point
	// reproduces a plain assessment bit for bit.
	NominalRoomTemp = aging.NominalRoomTemp
	// AcceleratedHighTemp is the accelerated-aging stress condition
	// (Maes & van der Leest style): 125 °C, +10 % overvoltage.
	AcceleratedHighTemp = aging.AcceleratedHighTemp
	// Screening corners: industrial temperature range, ±10 % supply.
	ColdCorner     = aging.ColdCorner
	HotCorner      = aging.HotCorner
	LowVoltage     = aging.LowVoltage
	HighVoltage    = aging.HighVoltage
	HotHighVoltage = aging.HotHighVoltage
)

// Condition returns an ad-hoc scenario named after its coordinates, e.g.
// Condition(85, 5.5) → "85C-5.5V".
func Condition(tempC, voltage float64) Scenario { return aging.Condition(tempC, voltage) }

// WithConditions adds environmental condition points to sweep. Scenarios
// are validated here — a non-positive voltage or a temperature below
// absolute zero fails fast with ErrConfig, before any side effect. May be
// given multiple times; exclusive with WithSource (the sweep builds one
// source per condition from the simulation options).
func WithConditions(scs ...Scenario) Option {
	return func(a *Assessment) error {
		if len(scs) == 0 {
			return fmt.Errorf("%w: WithConditions needs at least one scenario", ErrConfig)
		}
		for _, sc := range scs {
			if err := sc.Validate(); err != nil {
				return fmt.Errorf("%w: %v", ErrConfig, err)
			}
		}
		a.conditions = append(a.conditions, scs...)
		return nil
	}
}

// WithConditionGrid adds the cartesian product of the given temperatures
// and voltages as condition points ("0C-4.5V", "0C-5V", ...).
func WithConditionGrid(tempsC, volts []float64) Option {
	return func(a *Assessment) error {
		g := ConditionGrid{TempsC: tempsC, Volts: volts}
		if err := g.Validate(); err != nil {
			return err
		}
		a.conditions = append(a.conditions, g.Points()...)
		return nil
	}
}

// WithSweepProgress installs the sweep's incremental result callback:
// every completed month of every condition point is delivered as soon as
// it finalises. Points run concurrently, so fn MUST be safe for
// concurrent calls.
func WithSweepProgress(fn func(SweepProgress)) Option {
	return func(a *Assessment) error {
		a.sweepProgress = fn
		return nil
	}
}

// WithPointConcurrency bounds how many condition points run at once
// (<= 0, the default: all points concurrently). The sampling parallelism
// WITHIN the in-flight points is governed by WithWorkers, whose bound is
// shared across the whole sweep through one worker pool.
func WithPointConcurrency(n int) Option {
	return func(a *Assessment) error {
		a.pointParallel = n
		return nil
	}
}

// RunSweep executes one assessment per configured condition point and
// assembles the cross-condition comparison. The per-point campaign shape
// is the assessment's own configuration (profile, devices, seed, window
// size, months, metrics); WithConditions/WithConditionGrid supply the
// grid. Points run concurrently — bounded by WithPointConcurrency, with
// WithWorkers shared across all points — and the first point to fail
// cancels the rest. Cancelling ctx aborts the same way with an error
// wrapping ctx.Err(); completed months already delivered through
// WithSweepProgress remain valid partial results.
//
// Like Run, a sweep runs once; a failure before any measurement (invalid
// configuration) leaves the assessment retryable.
func (a *Assessment) RunSweep(ctx context.Context) (*SweepResults, error) {
	if a.ran {
		return nil, ErrAlreadyRun
	}
	if len(a.conditions) == 0 {
		return nil, fmt.Errorf("%w: RunSweep needs WithConditions or WithConditionGrid", ErrConfig)
	}
	profile := a.profile
	if !a.profileSet && a.fleet == nil {
		var err error
		if profile, err = ATmega32u4(); err != nil {
			return nil, err
		}
	}
	months := a.months
	if months == nil {
		// The paper's campaign length, matching Run's default.
		months = core.MonthRange(24)
	}
	// Pre-flight the engine's own configuration checks (device count,
	// window size, metric-name uniqueness, month ordering) against a
	// measurement-less probe source, plus the rig shape check, so a
	// configuration error surfaces before the sweep is marked run and
	// stays retryable — mirroring Run, which marks the assessment run
	// only after its engine construction succeeds.
	if _, err := core.NewAssessment(core.AssessmentConfig{
		Source:       configProbe(a.devices),
		WindowSize:   a.window,
		Months:       months,
		Metrics:      a.metrics,
		CrossMetrics: a.crossMetrics,
	}); err != nil {
		return nil, err
	}
	if a.useRig && a.devices%2 != 0 {
		return nil, fmt.Errorf("%w: rig needs an even device count >= 2 (two layers), got %d", ErrConfig, a.devices)
	}
	if a.shards > a.devices {
		return nil, fmt.Errorf("%w: more shards (%d) than devices (%d)", ErrConfig, a.shards, a.devices)
	}
	// Key-lifecycle sweeps screen once (the masks depend only on the
	// population, not the sweep point) and give every point its own
	// workload: enrollment is stateful and points run concurrently.
	var pointMetrics func(context.Context, Scenario) ([]Metric, []CrossMetric, error)
	if a.keylife {
		var err error
		if pointMetrics, err = a.keylifePointMetrics(ctx); err != nil {
			return nil, err
		}
	}
	a.ran = true
	return sweep.RunPoints(ctx, sweep.Config{
		Profile:        profile,
		Fleet:          a.fleet,
		Devices:        a.devices,
		Seed:           a.seed,
		UseRig:         a.useRig,
		I2CErrorRate:   a.i2cErr,
		WindowSize:     a.window,
		Months:         months,
		Workers:        a.workers,
		Concurrency:    a.pointParallel,
		Shards:         a.shards,
		ShardTransport: a.shardTransport,
		Metrics:        a.metrics,
		CrossMetrics:   a.crossMetrics,
		PointMetrics:   pointMetrics,
		Progress:       a.sweepProgress,
	}, a.conditions)
}

// RenderCornerTable formats a sweep's cross-condition comparison as the
// corner-comparison table of cmd/figures and cmd/sweep.
func RenderCornerTable(c SweepComparison) string { return report.RenderCornerTable(c) }

// configProbe is a measurement-less Source that exists only to run the
// engine's configuration validation in RunSweep's pre-flight.
type configProbe int

func (p configProbe) Devices() int { return int(p) }

func (p configProbe) Measure(context.Context, int, int, core.Sink) error {
	return fmt.Errorf("%w: configuration probe cannot measure", ErrConfig)
}
