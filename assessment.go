package sramaging

import (
	"context"
	"fmt"

	"repro/internal/core"
)

// Re-exported assessment types and errors.
type (
	// Results is the complete outcome of an assessment: the monthly
	// metric series, Table I, and the enrollment references.
	Results = core.Results
	// MonthEval is one evaluation window aggregated across devices,
	// including any custom Metric values.
	MonthEval = core.MonthEval
)

// Typed assessment errors, matchable with errors.Is. A cancelled Run
// returns an error wrapping ctx.Err() (context.Canceled or
// context.DeadlineExceeded) instead.
var (
	// ErrConfig reports an invalid assessment configuration.
	ErrConfig = core.ErrConfig
	// ErrShortWindow reports a source that delivered fewer measurements
	// than the evaluation window size.
	ErrShortWindow = core.ErrShortWindow
	// ErrUnknownDevice reports a measurement outside the source's
	// declared device range.
	ErrUnknownDevice = core.ErrUnknownDevice
	// ErrNoMonths reports an assessment with no months to evaluate.
	ErrNoMonths = core.ErrNoMonths
	// ErrAlreadyRun reports a second Run of a one-shot assessment.
	ErrAlreadyRun = core.ErrAlreadyRun
	// ErrScreenedOut reports a screening campaign whose pruning left
	// fewer than the two devices the uniqueness metrics need, with
	// evaluation months still remaining.
	ErrScreenedOut = core.ErrScreenedOut
)

// Assessment is the composable campaign builder: one Source (simulated,
// rig or archive replay), the built-in Table I metrics, any number of
// custom Metrics, and a month range — executed by Run in one streaming
// pass per month with cancellation and incremental per-month emission.
//
//	a, _ := sramaging.NewAssessment(
//	        sramaging.WithDevices(4),
//	        sramaging.WithMonths(6),
//	        sramaging.WithWindowSize(200),
//	        sramaging.WithProgress(func(ev sramaging.MonthEval) { fmt.Println(ev.Label) }),
//	)
//	res, err := a.Run(ctx)
//
// An Assessment runs once: simulated sources are stateful (every power-up
// draw advances the chips' RNG), so build a fresh Assessment per run.
type Assessment struct {
	src Source

	profile    DeviceProfile
	profileSet bool
	fleet      *core.Fleet
	devices    int
	seed       uint64
	useRig     bool
	i2cErr     float64
	simSet     bool // any simulation option given (exclusive with WithSource)

	window         int
	months         []int
	workers        int
	workersSet     bool
	shards         int
	shardTransport ShardTransport
	metrics        []Metric
	crossMetrics   []CrossMetric
	progress       func(MonthEval)
	ran            bool

	// Condition-sweep state (RunSweep; see sweep.go).
	conditions    []Scenario
	sweepProgress func(SweepProgress)
	pointParallel int

	// Key-lifecycle state (WithKeyLifecycle; see keylife.go).
	keylife    bool
	keylifeCfg KeyLifeConfig

	// Screening / lazy-construction state (WithScreening, WithLazy).
	screening *core.ScreeningConfig
	lazy      bool
}

// Option configures an Assessment.
type Option func(*Assessment) error

// WithSource supplies the measurement source directly — an
// ArchiveSource, a pre-built SimulatedSource/RigSource, or any external
// Source implementation. Exclusive with the simulation options
// (WithProfile, WithDevices, WithSeed, WithHarness, WithI2CErrorRate).
func WithSource(src Source) Option {
	return func(a *Assessment) error {
		if src == nil {
			return fmt.Errorf("%w: nil source", ErrConfig)
		}
		a.src = src
		return nil
	}
}

// WithProfile selects the simulated device family (default: the paper's
// ATmega32u4).
func WithProfile(p DeviceProfile) Option {
	return func(a *Assessment) error {
		a.profile, a.profileSet, a.simSet = p, true, true
		return nil
	}
}

// WithDevices sets the number of boards under test (default 16, the
// paper's campaign).
func WithDevices(n int) Option {
	return func(a *Assessment) error {
		a.devices, a.simSet = n, true
		return nil
	}
}

// WithSeed sets the campaign seed (default 20170208). One seed derives
// every per-device measurement stream deterministically.
func WithSeed(seed uint64) Option {
	return func(a *Assessment) error {
		a.seed, a.simSet = seed, true
		return nil
	}
}

// WithHarness routes every window through the full measurement-rig
// simulation instead of direct sampling. The measurement streams are
// bit-identical; the rig adds fidelity (power switch, boot, I2C), not
// different bits.
func WithHarness() Option {
	return func(a *Assessment) error {
		a.useRig, a.simSet = true, true
		return nil
	}
}

// WithI2CErrorRate sets the rig's I2C byte-corruption rate (implies
// nothing without WithHarness).
func WithI2CErrorRate(rate float64) Option {
	return func(a *Assessment) error {
		if rate < 0 || rate > 1 {
			return fmt.Errorf("%w: I2C error rate %v", ErrConfig, rate)
		}
		a.i2cErr, a.simSet = rate, true
		return nil
	}
}

// WithWindowSize sets the measurements per monthly evaluation window
// (default 1,000, the paper's campaign). Validated here, not at Run, so
// a bad window size fails before any side effect.
func WithWindowSize(n int) Option {
	return func(a *Assessment) error {
		if n < 2 {
			return fmt.Errorf("%w: need >= 2 measurements per window, got %d", ErrConfig, n)
		}
		a.window = n
		return nil
	}
}

// WithMonths sets the campaign length: evaluations run at months 0..n
// inclusive (default 24, the paper's two years), so n >= 1 gives the two
// evaluations Table I needs. Without WithMonths, a MonthLister source
// (archive replay) is evaluated at exactly the months it holds. For
// sparse evaluation schedules use WithMonthList.
func WithMonths(n int) Option {
	return func(a *Assessment) error {
		if n < 1 {
			return fmt.Errorf("%w: need a campaign length >= 1 month, got %d", ErrConfig, n)
		}
		a.months = core.MonthRange(n)
		return nil
	}
}

// WithMonthList sets an explicit ascending list of month indices to
// evaluate — sparse campaigns, say quarterly re-evaluation of an aging
// fleet. The silicon still ages analytically through the months between
// evaluations; only the evaluation windows are skipped.
func WithMonthList(months []int) Option {
	return func(a *Assessment) error {
		if len(months) == 0 {
			// An empty list must not fall through to the default
			// campaign: fail fast instead of silently running 25 months.
			return fmt.Errorf("%w: empty month list", ErrConfig)
		}
		a.months = append([]int(nil), months...)
		return nil
	}
}

// WithWorkers bounds evaluation parallelism on sources that support it
// (<= 0: one goroutine per device, the historical default).
func WithWorkers(n int) Option {
	return func(a *Assessment) error {
		a.workers, a.workersSet = n, true
		return nil
	}
}

// WithMetrics registers custom per-device metrics; their values appear in
// MonthEval.Custom keyed by Metric.Name. May be given multiple times.
func WithMetrics(ms ...Metric) Option {
	return func(a *Assessment) error {
		a.metrics = append(a.metrics, ms...)
		return nil
	}
}

// WithCrossMetrics registers custom cross-device metrics over the
// window-first patterns; their values appear in MonthEval.CrossCustom
// keyed by CrossMetric.Name. May be given multiple times.
func WithCrossMetrics(ms ...CrossMetric) Option {
	return func(a *Assessment) error {
		a.crossMetrics = append(a.crossMetrics, ms...)
		return nil
	}
}

// WithScreening enables corner-screening mode: after every evaluated
// month, devices whose stable-cell ratio fell below floor (in [0, 1))
// are pruned from the campaign — they stop being sampled, each
// subsequent MonthEval carries the survivor count and device-index
// mapping, and per-profile attrition accumulates in MonthEval.Attrition.
// The prune decision depends only on the month's metrics, so direct,
// sharded and replayed executions prune identical devices. If pruning
// ever leaves fewer than two devices with months remaining, Run reports
// ErrScreenedOut. Exclusive with WithKeyLifecycle (the key workload
// assumes a fixed population).
func WithScreening(floor float64) Option {
	return func(a *Assessment) error {
		if floor < 0 || floor >= 1 {
			return fmt.Errorf("%w: screening floor %v outside [0, 1)", ErrConfig, floor)
		}
		if a.screening == nil {
			a.screening = &core.ScreeningConfig{}
		}
		a.screening.Floor = floor
		return nil
	}
}

// WithScreeningPerProfile overrides the screening floor for named fleet
// profiles — corner-screening a mixed fleet against family-specific
// limits. Profiles not listed use the WithScreening floor (0 if never
// set: they are never pruned). Implies screening mode.
func WithScreeningPerProfile(floors map[string]float64) Option {
	return func(a *Assessment) error {
		for name, f := range floors {
			if f < 0 || f >= 1 {
				return fmt.Errorf("%w: screening floor %v for profile %q outside [0, 1)", ErrConfig, f, name)
			}
		}
		if a.screening == nil {
			a.screening = &core.ScreeningConfig{}
		}
		if a.screening.PerProfile == nil {
			a.screening.PerProfile = make(map[string]float64, len(floors))
		}
		for name, f := range floors {
			a.screening.PerProfile[name] = f
		}
		return nil
	}
}

// WithLazy selects on-demand chip construction for the simulated
// sources: chips are derived from (seed, device index) inside the
// worker slot that measures them and rebuilt per month, so the resident
// array state is O(sampling workers), independent of the device count —
// the construction behind million-device fleet screening. Streams are
// bit-identical to the eager sources; the trade is O(months²) aging
// replay per device, the right trade for huge populations over few
// months. Exclusive with WithHarness and WithSource.
func WithLazy() Option {
	return func(a *Assessment) error {
		a.lazy, a.simSet = true, true
		return nil
	}
}

// WithProgress installs the incremental result callback: every completed
// month evaluation is delivered as soon as it finalises, before the next
// month starts — streaming results for long campaigns, and the natural
// place to drive cancellation from.
func WithProgress(fn func(MonthEval)) Option {
	return func(a *Assessment) error {
		a.progress = fn
		return nil
	}
}

// NewAssessment builds an assessment from functional options. With no
// options it is the paper's campaign: 16 simulated ATmega32u4 boards, 24
// months, 1,000-measurement windows.
func NewAssessment(opts ...Option) (*Assessment, error) {
	a := &Assessment{devices: 16, seed: 20170208, window: 1000}
	for _, opt := range opts {
		if err := opt(a); err != nil {
			return nil, err
		}
	}
	if a.src != nil && a.simSet {
		return nil, fmt.Errorf("%w: WithSource is exclusive with WithProfile/WithDevices/WithSeed/WithHarness/WithI2CErrorRate", ErrConfig)
	}
	if a.src != nil && len(a.conditions) > 0 {
		return nil, fmt.Errorf("%w: WithConditions is exclusive with WithSource (the sweep builds one source per condition)", ErrConfig)
	}
	if a.src != nil && a.shards > 0 {
		return nil, fmt.Errorf("%w: WithShards is exclusive with WithSource (sharding builds the sources; shard an archive with NewShardedArchiveSource)", ErrConfig)
	}
	if a.fleet != nil {
		switch {
		case a.profileSet:
			return nil, fmt.Errorf("%w: WithFleet is exclusive with WithProfile (the fleet carries its profiles)", ErrConfig)
		case a.useRig:
			return nil, fmt.Errorf("%w: WithFleet is exclusive with WithHarness (the measurement rig is a single-profile instrument)", ErrConfig)
		case a.keylife:
			return nil, fmt.Errorf("%w: WithFleet is exclusive with WithKeyLifecycle (the key-lifecycle workload is single-profile)", ErrConfig)
		}
	}
	if a.screening != nil && a.keylife {
		return nil, fmt.Errorf("%w: WithScreening is exclusive with WithKeyLifecycle (the key workload assumes a fixed population)", ErrConfig)
	}
	if a.screening != nil && len(a.conditions) > 0 {
		return nil, fmt.Errorf("%w: WithScreening is exclusive with WithConditions (screen one corner at a time)", ErrConfig)
	}
	if a.lazy {
		switch {
		case a.useRig:
			return nil, fmt.Errorf("%w: WithLazy is exclusive with WithHarness (the rig is a persistent coupled instrument)", ErrConfig)
		case a.src != nil:
			return nil, fmt.Errorf("%w: WithLazy is exclusive with WithSource (lazy construction builds the simulated sources)", ErrConfig)
		}
	}
	return a, nil
}

// Run executes the assessment: one streaming pass per month, every
// completed month emitted through WithProgress, the final Results
// assembled at the end (Table I spans the first and last evaluation).
// Cancelling ctx aborts between measurements and returns an error
// wrapping ctx.Err(); months already emitted remain valid partial
// results.
func (a *Assessment) Run(ctx context.Context) (*Results, error) {
	if a.ran {
		return nil, ErrAlreadyRun
	}
	if len(a.conditions) > 0 {
		return nil, fmt.Errorf("%w: an assessment with WithConditions runs through RunSweep", ErrConfig)
	}
	src := a.src
	if src == nil {
		profile := a.profile
		if !a.profileSet {
			var err error
			if profile, err = ATmega32u4(); err != nil {
				return nil, err
			}
		}
		var err error
		switch {
		case a.fleet != nil && a.shards > 0 && a.lazy:
			var s *ShardedSource
			s, err = core.NewShardedLazySimFleetSource(a.fleet, a.devices, a.seed, a.shards, a.shardTransport)
			if s != nil {
				defer s.Close()
			}
			src = s
		case a.fleet != nil && a.shards > 0:
			var s *ShardedSource
			s, err = NewShardedFleetSource(a.fleet, a.devices, a.seed, a.shards, a.shardTransport)
			if s != nil {
				defer s.Close()
			}
			src = s
		case a.fleet != nil && a.lazy:
			src, err = core.NewLazySimFleetSource(a.fleet, a.devices, a.seed)
		case a.fleet != nil:
			src, err = NewFleetSource(a.fleet, a.devices, a.seed)
		case a.lazy && a.shards > 0:
			// Lazy single-profile shards ride the one-profile-fleet
			// short-circuit, keeping the plain campaign's bits.
			var fleet *Fleet
			if fleet, err = NewFleet(profile); err == nil {
				var s *ShardedSource
				s, err = core.NewShardedLazySimFleetSource(fleet, a.devices, a.seed, a.shards, a.shardTransport)
				if s != nil {
					defer s.Close()
				}
				src = s
			}
		case a.lazy:
			src, err = core.NewLazySimSource(profile, a.devices, a.seed)
		case a.shards > 0 && a.useRig:
			var s *ShardedSource
			s, err = NewShardedRigSource(profile, a.devices, a.seed, a.i2cErr, a.shards, a.shardTransport)
			if s != nil {
				defer s.Close()
			}
			src = s
		case a.shards > 0:
			var s *ShardedSource
			s, err = NewShardedSimSource(profile, a.devices, a.seed, a.shards, a.shardTransport)
			if s != nil {
				defer s.Close()
			}
			src = s
		case a.useRig:
			src, err = NewRigSource(profile, a.devices, a.seed, a.i2cErr)
		default:
			src, err = NewSimulatedSource(profile, a.devices, a.seed)
		}
		if err != nil {
			return nil, err
		}
	}
	if a.workersSet {
		if ws, ok := src.(WorkerSetter); ok {
			ws.SetWorkers(a.workers)
		}
	}
	months := a.months
	if months == nil {
		if _, ok := src.(MonthLister); !ok {
			// The paper's campaign length, matching DefaultCampaign.
			months = core.MonthRange(24)
		}
	}
	metrics, crossMetrics := a.metrics, a.crossMetrics
	if a.keylife {
		// The workload screens the simulated population from (profile,
		// devices, seed) regardless of src, so an archive replay of a
		// recorded campaign derives the identical masks and series.
		wl, err := a.keylifeWorkload(ctx, src.Devices())
		if err != nil {
			return nil, err
		}
		metrics = append(append([]Metric{}, metrics...), wl.Metrics()...)
		crossMetrics = append(append([]CrossMetric{}, crossMetrics...), wl.CrossMetrics()...)
	}
	eng, err := core.NewAssessment(core.AssessmentConfig{
		Source:       src,
		WindowSize:   a.window,
		Months:       months,
		Metrics:      metrics,
		CrossMetrics: crossMetrics,
		Progress:     a.progress,
		Screening:    a.screening,
	})
	if err != nil {
		// Nothing was measured: a retry after a configuration error must
		// see the configuration error again, not ErrAlreadyRun.
		return nil, err
	}
	a.ran = true
	return eng.Run(ctx)
}
