package sramaging

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestFacadeCampaign(t *testing.T) {
	cfg, err := DefaultCampaign()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Devices = 2
	cfg.Months = 2
	cfg.WindowSize = 50
	res, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTableI(res.Table)
	if !strings.Contains(out, "WCHD") || !strings.Contains(out, "PUF entropy") {
		t.Fatalf("table rendering:\n%s", out)
	}
}

func TestFacadeStreamingAndBatchEnginesAgree(t *testing.T) {
	cfg, err := DefaultCampaign()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Devices = 3
	cfg.Months = 1
	cfg.WindowSize = 40
	streamed, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := RunCampaignBatch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(streamed.Monthly, batch.Monthly) || !reflect.DeepEqual(streamed.Table, batch.Table) {
		t.Fatal("streaming and batch engines disagree at the facade")
	}
}

func TestFacadeChipAndTRNG(t *testing.T) {
	profile, err := ATmega32u4()
	if err != nil {
		t.Fatal(err)
	}
	chip, err := NewChip(profile, 7)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := NewTRNG(chip)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if _, err := io.ReadFull(gen, buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(buf, make([]byte, 64)) {
		t.Fatal("TRNG produced zeros")
	}
}

func TestFacadeKeyExtractor(t *testing.T) {
	e, err := NewKeyExtractor()
	if err != nil {
		t.Fatal(err)
	}
	if e.ResponseBits() != 1265 {
		t.Fatalf("response bits = %d, want 1265", e.ResponseBits())
	}
	profile, err := ATmega32u4()
	if err != nil {
		t.Fatal(err)
	}
	chip, err := NewChip(profile, 9)
	if err != nil {
		t.Fatal(err)
	}
	w, err := chip.PowerUpWindow()
	if err != nil {
		t.Fatal(err)
	}
	resp := w.Slice(0, e.ResponseBits())
	key, helper, err := e.Enroll(resp, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// Fresh measurement of the same chip reconstructs.
	w2, err := chip.PowerUpWindow()
	if err != nil {
		t.Fatal(err)
	}
	back, err := e.Reconstruct(w2.Slice(0, e.ResponseBits()), helper)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(key, back) {
		t.Fatal("key reconstruction mismatch")
	}
}

func TestFacadeTrajectories(t *testing.T) {
	nom, err := ATmega32u4()
	if err != nil {
		t.Fatal(err)
	}
	acc, err := CMOS65nmAccelerated()
	if err != nil {
		t.Fatal(err)
	}
	tn, err := PredictedWCHDTrajectory(nom, 12)
	if err != nil {
		t.Fatal(err)
	}
	ta, err := PredictedWCHDTrajectory(acc, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(tn) != 13 || len(ta) != 13 {
		t.Fatalf("trajectory lengths %d/%d", len(tn), len(ta))
	}
	if ta[0] <= tn[0] {
		t.Fatal("accelerated profile should start at higher WCHD (5.3% vs 2.49%)")
	}
}
