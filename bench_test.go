// Benchmarks regenerating every table and figure of the paper, plus the
// ablation benches listed in DESIGN.md §11. Each Benchmark* function is the
// machine-checked counterpart of one experiment id in DESIGN.md §10;
// campaign-scale benches run a reduced configuration per iteration (the
// full 16-device / 24-month / 1,000-window campaign is produced by
// cmd/agingtest and recorded in EXPERIMENTS.md).
package sramaging

import (
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/debias"
	"repro/internal/ecc"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/silicon"
	"repro/internal/sram"
	"repro/internal/store"
)

// benchCampaignConfig is the reduced per-iteration campaign used by the
// table/figure benches.
func benchCampaignConfig(b *testing.B) core.Config {
	b.Helper()
	cfg, err := core.DefaultConfig()
	if err != nil {
		b.Fatal(err)
	}
	cfg.Devices = 4
	cfg.Months = 3
	cfg.WindowSize = 100
	return cfg
}

// BenchmarkTableI regenerates the Table I pipeline (experiment T1).
func BenchmarkTableI(b *testing.B) {
	cfg := benchCampaignConfig(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		camp, err := core.NewCampaign(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := camp.Run()
		if err != nil {
			b.Fatal(err)
		}
		if out := report.RenderTableI(res.Table); !strings.Contains(out, "WCHD") {
			b.Fatal("table rendering failed")
		}
	}
}

// BenchmarkFig3Waveform regenerates the power-cycle waveform trace
// (experiment F3).
func BenchmarkFig3Waveform(b *testing.B) {
	profile, err := silicon.ATmega32u4()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hcfg := harness.DefaultConfig(profile, 3)
		hcfg.SlavesPerLayer = 2
		rig, err := harness.New(hcfg)
		if err != nil {
			b.Fatal(err)
		}
		rig.Switch().SetTracing(true)
		if err := rig.RunWindow(4, store.Epoch); err != nil {
			b.Fatal(err)
		}
		out := report.RenderWaveforms(rig.Switch().Trace(), []int{0, 1, 2, 3}, rig.Sim().Now(), 108)
		if len(out) == 0 {
			b.Fatal("no waveform output")
		}
	}
}

// BenchmarkFig4Pattern regenerates the start-up pattern bitmap
// (experiment F4).
func BenchmarkFig4Pattern(b *testing.B) {
	profile, err := silicon.ATmega32u4()
	if err != nil {
		b.Fatal(err)
	}
	chip, err := sram.New(profile, rng.New(0))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := chip.PowerUpWindow()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := report.RenderPattern(w, 128); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Histograms regenerates the start-of-test WCHD/BCHD/FHW
// distributions (experiment F5).
func BenchmarkFig5Histograms(b *testing.B) {
	profile, err := silicon.ATmega32u4()
	if err != nil {
		b.Fatal(err)
	}
	root := rng.New(42)
	const devices = 4
	const windows = 50
	refs := make([]*bitvec.Vector, devices)
	sets := make([][]*bitvec.Vector, devices)
	for d := 0; d < devices; d++ {
		chip, err := sram.New(profile, root.Derive(uint64(d)+1))
		if err != nil {
			b.Fatal(err)
		}
		for k := 0; k < windows; k++ {
			w, err := chip.PowerUpWindow()
			if err != nil {
				b.Fatal(err)
			}
			if k == 0 {
				refs[d] = w
			}
			sets[d] = append(sets[d], w)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := metrics.NewHistograms(100)
		if err != nil {
			b.Fatal(err)
		}
		for d := 0; d < devices; d++ {
			wc, err := metrics.WithinClassHD(refs[d], sets[d])
			if err != nil {
				b.Fatal(err)
			}
			fw, err := metrics.FractionalHW(sets[d])
			if err != nil {
				b.Fatal(err)
			}
			h.AddDevice(wc, fw)
		}
		bc, err := metrics.BetweenClassHD(refs)
		if err != nil {
			b.Fatal(err)
		}
		h.AddBetweenClass(bc)
	}
}

// BenchmarkFig6Series regenerates the monthly metric time series
// (experiments F6a-F6d).
func BenchmarkFig6Series(b *testing.B) {
	cfg := benchCampaignConfig(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		camp, err := core.NewCampaign(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := camp.Run()
		if err != nil {
			b.Fatal(err)
		}
		if s := res.Series(func(d core.DeviceMonth) float64 { return d.WCHD }); len(s) != cfg.Devices {
			b.Fatal("series extraction failed")
		}
		if s := res.PUFEntropySeries(); len(s) != cfg.Months+1 {
			b.Fatal("PUF series extraction failed")
		}
	}
}

// BenchmarkAccelComparison regenerates the nominal-vs-accelerated WCHD
// trajectories (experiment X1).
func BenchmarkAccelComparison(b *testing.B) {
	nom, err := silicon.ATmega32u4()
	if err != nil {
		b.Fatal(err)
	}
	acc, err := silicon.CMOS65nmAccelerated()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.PredictedWCHDTrajectory(nom, 24); err != nil {
			b.Fatal(err)
		}
		if _, err := core.PredictedWCHDTrajectory(acc, 24); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKeyReconstruction measures the key-generation pipeline at the
// paper's end-of-life BER (experiment X2).
func BenchmarkKeyReconstruction(b *testing.B) {
	e, err := NewKeyExtractor()
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(1)
	resp := bitvec.New(e.ResponseBits())
	for i := 0; i < resp.Len(); i++ {
		resp.Set(i, src.Bernoulli(0.627))
	}
	_, helper, err := e.Enroll(resp, src)
	if err != nil {
		b.Fatal(err)
	}
	noisy := resp.Clone()
	for i := 0; i < noisy.Len(); i++ {
		if src.Bernoulli(0.0325) {
			noisy.Set(i, !noisy.Get(i))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Reconstruct(noisy, helper); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTRNG measures the SRAM-PUF TRNG throughput (experiment X3).
func BenchmarkTRNG(b *testing.B) {
	profile, err := silicon.ATmega32u4()
	if err != nil {
		b.Fatal(err)
	}
	chip, err := sram.New(profile, rng.New(5))
	if err != nil {
		b.Fatal(err)
	}
	gen, err := NewTRNG(chip)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 1024)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := io.ReadFull(gen, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §11) ---

// BenchmarkAblationAgingExponent sweeps the BTI power-law exponent: the
// kinetics shape changes the per-step work only marginally but the drift
// magnitude substantially.
func BenchmarkAblationAgingExponent(b *testing.B) {
	profile, err := silicon.ATmega32u4()
	if err != nil {
		b.Fatal(err)
	}
	for _, beta := range []float64{0.20, 0.35, 0.50} {
		b.Run(fmt.Sprintf("beta=%.2f", beta), func(b *testing.B) {
			p := profile
			p.Kinetics.Exponent = beta
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				chip, err := sram.New(p, rng.New(1))
				if err != nil {
					b.Fatal(err)
				}
				if err := chip.AgeTo(24); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationNoisePath compares the Bernoulli fast path against the
// physically literal full-Gaussian-noise power-up.
func BenchmarkAblationNoisePath(b *testing.B) {
	profile, err := silicon.ATmega32u4()
	if err != nil {
		b.Fatal(err)
	}
	chip, err := sram.New(profile, rng.New(2))
	if err != nil {
		b.Fatal(err)
	}
	dst := bitvec.New(chip.Cells())
	b.Run("bernoulli", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := chip.PowerUp(dst); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-noise", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := chip.PowerUpFullNoise(dst, 1.0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationECC compares decoder costs of the implemented codes at
// the paper's BER.
func BenchmarkAblationECC(b *testing.B) {
	src := rng.New(3)
	codes := []ecc.Code{}
	rep5, err := ecc.NewRepetition(5)
	if err != nil {
		b.Fatal(err)
	}
	rep, err := ecc.NewBlocked(rep5, 64)
	if err != nil {
		b.Fatal(err)
	}
	codes = append(codes, rep)
	golayRep, err := ecc.NewConcatenated(ecc.NewGolay(), rep5)
	if err != nil {
		b.Fatal(err)
	}
	golayBlocked, err := ecc.NewBlocked(golayRep, 6)
	if err != nil {
		b.Fatal(err)
	}
	codes = append(codes, golayBlocked)
	polar, err := ecc.NewPolar(512, 64, 0.03)
	if err != nil {
		b.Fatal(err)
	}
	codes = append(codes, polar)
	for _, code := range codes {
		code := code
		b.Run(code.Name(), func(b *testing.B) {
			msg := bitvec.New(code.K())
			for i := 0; i < msg.Len(); i++ {
				msg.Set(i, src.Bernoulli(0.5))
			}
			cw, err := code.Encode(msg)
			if err != nil {
				b.Fatal(err)
			}
			noisy := cw.Clone()
			for i := 0; i < noisy.Len(); i++ {
				if src.Bernoulli(0.03) {
					noisy.Set(i, !noisy.Get(i))
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := code.Decode(noisy); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDebias compares the debiasing schemes on the paper's
// 62.7%-biased source.
func BenchmarkAblationDebias(b *testing.B) {
	src := rng.New(4)
	in := bitvec.New(8192)
	for i := 0; i < in.Len(); i++ {
		in.Set(i, src.Bernoulli(0.627))
	}
	b.Run("cvn", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := debias.ClassicVonNeumann(in); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("peres-depth3", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := debias.Peres(in, 3); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("index-selection", func(b *testing.B) {
		sel, err := debias.NewIndexSelection(in, 1024)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sel.Apply(in); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationRamp sweeps the effective noise sigma, the knob the
// voltage-ramp-time adaptation of Cortez et al. (paper ref [17]) turns:
// slower ramps reduce noise (fewer flips), faster ramps increase it.
func BenchmarkAblationRamp(b *testing.B) {
	profile, err := silicon.ATmega32u4()
	if err != nil {
		b.Fatal(err)
	}
	chip, err := sram.New(profile, rng.New(6))
	if err != nil {
		b.Fatal(err)
	}
	dst := bitvec.New(chip.Cells())
	for _, sigma := range []float64{0.5, 1.0, 2.0} {
		b.Run(fmt.Sprintf("sigma=%.1f", sigma), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := chip.PowerUpFullNoise(dst, sigma); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
