package sramaging

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// assertSameResults compares two assessment Results bit for bit.
func assertSameResults(t *testing.T, want, got *Results) {
	t.Helper()
	if !reflect.DeepEqual(want.Monthly, got.Monthly) {
		t.Fatal("monthly series differ between single-process and sharded runs")
	}
	if !reflect.DeepEqual(want.Table, got.Table) {
		t.Fatal("Table I differs between single-process and sharded runs")
	}
}

// TestWithShardsBitIdentical: the facade's sharded execution produces
// bit-identical Results to the plain assessment for shard counts 1, 2
// and 7, on the sim and harness paths.
func TestWithShardsBitIdentical(t *testing.T) {
	base := []Option{WithDevices(8), WithMonths(3), WithWindowSize(40)}
	for _, harness := range []bool{false, true} {
		opts := append([]Option{}, base...)
		if harness {
			opts = append(opts, WithHarness())
		}
		plain, err := NewAssessment(opts...)
		if err != nil {
			t.Fatal(err)
		}
		want, err := plain.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 2, 7} {
			a, err := NewAssessment(append(append([]Option{}, opts...), WithShards(shards))...)
			if err != nil {
				t.Fatalf("harness=%v shards=%d: %v", harness, shards, err)
			}
			got, err := a.Run(context.Background())
			if err != nil {
				t.Fatalf("harness=%v shards=%d: %v", harness, shards, err)
			}
			assertSameResults(t, want, got)
		}
	}
}

// TestWithShardsWorkersBitIdentical: the -workers budget split across
// shard processes does not change a bit.
func TestWithShardsWorkersBitIdentical(t *testing.T) {
	want, err := runSmall(t, WithWorkers(1), WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	got, err := runSmall(t, WithWorkers(8), WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, want, got)
}

func runSmall(t *testing.T, extra ...Option) (*Results, error) {
	t.Helper()
	a, err := NewAssessment(smallOpts(extra...)...)
	if err != nil {
		return nil, err
	}
	return a.Run(context.Background())
}

// TestWithShardsExclusiveWithSource: sharding builds the sources, so it
// cannot be combined with an explicit one.
func TestWithShardsExclusiveWithSource(t *testing.T) {
	profile, err := ATmega32u4()
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewSimulatedSource(profile, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAssessment(WithSource(src), WithShards(2)); !errors.Is(err, ErrConfig) {
		t.Fatalf("err = %v, want ErrConfig", err)
	}
	if _, err := NewAssessment(WithShards(0)); !errors.Is(err, ErrConfig) {
		t.Fatalf("WithShards(0): err = %v, want ErrConfig", err)
	}
	if _, err := NewAssessment(WithShardTransport(nil)); !errors.Is(err, ErrConfig) {
		t.Fatalf("nil transport: err = %v, want ErrConfig", err)
	}
}

// TestRunSweepShardedBitIdentical: a sweep whose per-corner sources are
// sharded produces bit-identical per-point Results and cross-condition
// Comparison to the in-process sweep.
func TestRunSweepShardedBitIdentical(t *testing.T) {
	opts := func(extra ...Option) []Option {
		return append([]Option{
			WithDevices(4),
			WithMonths(2),
			WithWindowSize(30),
			WithConditions(NominalRoomTemp, HotCorner, ColdCorner),
		}, extra...)
	}
	plain, err := NewAssessment(opts()...)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.RunSweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewAssessment(opts(WithShards(2))...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sharded.RunSweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Points) != len(got.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(want.Points), len(got.Points))
	}
	for i := range want.Points {
		if !reflect.DeepEqual(want.Points[i].Results.Monthly, got.Points[i].Results.Monthly) {
			t.Fatalf("point %q differs between in-process and sharded sweeps", want.Points[i].Scenario.Name)
		}
	}
	if !reflect.DeepEqual(want.Comparison, got.Comparison) {
		t.Fatal("cross-condition comparison differs between in-process and sharded sweeps")
	}
}

// TestWithShardsNoGoroutineLeak: the facade closes the sharded source it
// builds, so a completed (or failed) run leaves no worker goroutines.
func TestWithShardsNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	if _, err := runSmall(t, WithShards(2)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}
