package sramaging

import "repro/internal/core"

// Re-exported metric types. A Metric is an externally registered,
// one-pass per-device accumulator that rides the assessment engine's
// single measurement pass — custom statistics (a condition-sweep WCHD, a
// flip-location tally, ...) without touching the engine.
type (
	// Metric derives one custom per-device statistic per window; its
	// values land in MonthEval.Custom keyed by Name.
	Metric = core.Metric
	// MetricAccumulator folds one device-window measurement by
	// measurement and finalises to a float64. Each accumulator sees its
	// own device's measurements sequentially, but accumulators of
	// distinct devices run CONCURRENTLY (sources deliver devices in
	// parallel): NewAccumulator must return an independent value per
	// device, and accumulators must not share mutable state.
	MetricAccumulator = core.MetricAccumulator
	// CrossMetric derives one custom CROSS-device statistic per window
	// from each device's window-first pattern — the same input the
	// built-in BCHD / PUF min-entropy metrics consume. Values land in
	// MonthEval.CrossCustom keyed by Name.
	CrossMetric = core.CrossMetric
)

// NewMetric builds a Metric from a name and an accumulator factory: for
// every device-window the engine calls fn(month, device, ref) — ref is
// the device's enrollment reference, nil on the enrollment window itself
// — and feeds every measurement of the window to the returned
// accumulator. See examples/custommetric for a full implementation of the
// Metric interface instead.
func NewMetric(name string, fn func(month, device int, ref *Pattern) (MetricAccumulator, error)) Metric {
	return core.NewMetricFunc(name, fn)
}

// NewCrossMetric builds a CrossMetric from a name and a compute function
// that receives one window-first pattern per device (in device order,
// engine-owned — clone to retain).
func NewCrossMetric(name string, fn func(month int, firsts []*Pattern) (float64, error)) CrossMetric {
	return core.NewCrossMetricFunc(name, fn)
}
