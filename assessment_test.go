package sramaging

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/store"
)

// smallOpts returns a reduced assessment that keeps test time in check.
func smallOpts(extra ...Option) []Option {
	return append([]Option{
		WithDevices(4),
		WithMonths(3),
		WithWindowSize(60),
	}, extra...)
}

// TestAssessmentCancellationMidCampaign cancels from the per-month
// progress callback and asserts the acceptance criteria of the redesign:
// Run returns promptly with an error matching context.Canceled, the
// months completed before cancellation were reported, and no evaluation
// goroutines leak.
func TestAssessmentCancellationMidCampaign(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var seen []int
	a, err := NewAssessment(smallOpts(
		WithMonths(12), // far more months than we let it finish
		WithProgress(func(ev MonthEval) {
			seen = append(seen, ev.Month)
			if ev.Month == 1 {
				cancel()
			}
		}),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := a.Run(ctx)
	if res != nil {
		t.Fatal("cancelled run returned results")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run: err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancelled run took %v", elapsed)
	}
	// Partial progress: months 0 and 1 completed and were reported.
	if len(seen) != 2 || seen[0] != 0 || seen[1] != 1 {
		t.Fatalf("progress months = %v, want [0 1]", seen)
	}
	// No goroutine leaks: the per-device samplers must wind down.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

// TestAssessmentCancellationMidWindow cancels from inside a window (via a
// custom metric's Add, i.e. between two measurements of one device) — the
// direct-path samplers must abort without finishing the window.
func TestAssessmentCancellationMidWindow(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	calls := 0
	tripwire := NewMetric("tripwire", func(month, device int, ref *Pattern) (MetricAccumulator, error) {
		return addFunc(func(m *Pattern) error {
			calls++
			if calls == 10 {
				cancel()
			}
			return nil
		}), nil
	})
	// WithWorkers(1) serialises device delivery: this metric's
	// accumulators deliberately share the calls counter, which the
	// Metric contract otherwise forbids (devices run concurrently).
	a, err := NewAssessment(smallOpts(WithWorkers(1), WithMetrics(tripwire))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestAssessmentPreCancelled: a context cancelled before Run starts must
// abort before any window is measured.
func TestAssessmentPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	progressed := false
	a, err := NewAssessment(smallOpts(WithProgress(func(MonthEval) { progressed = true }))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if progressed {
		t.Fatal("pre-cancelled run evaluated a month")
	}
}

// TestAssessmentCancellationHarnessPath: the rig simulation must also
// abort promptly — the record tap propagates the context error and the
// event pump stops instead of completing the window.
func TestAssessmentCancellationHarnessPath(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	a, err := NewAssessment(
		WithDevices(2),
		WithMonths(8),
		WithWindowSize(40),
		WithHarness(),
		WithProgress(func(ev MonthEval) {
			if ev.Month == 0 {
				cancel()
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// addFunc adapts a closure to MetricAccumulator for test metrics.
type addFunc func(m *Pattern) error

func (f addFunc) Add(m *Pattern) error    { return f(m) }
func (f addFunc) Value() (float64, error) { return 0, nil }

// TestArchiveReplayRoundTrip is the offline-equals-live property: a rig
// campaign tapped to JSONL (store.JSONLWriter), replayed through an
// ArchiveSource, must reproduce the live run's Results bit for bit.
func TestArchiveReplayRoundTrip(t *testing.T) {
	profile, err := ATmega32u4()
	if err != nil {
		t.Fatal(err)
	}
	const devices, months, window = 4, 2, 30

	var buf bytes.Buffer
	jw := store.NewJSONLWriter(&buf)
	rig, err := NewRigSource(profile, devices, 20170208, 0)
	if err != nil {
		t.Fatal(err)
	}
	rig.SetTap(jw.Write)
	live, err := NewAssessment(
		WithSource(rig),
		WithMonths(months),
		WithWindowSize(window),
	)
	if err != nil {
		t.Fatal(err)
	}
	resLive, err := live.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := jw.Flush(); err != nil {
		t.Fatal(err)
	}

	src, err := NewArchiveSource(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// No WithMonths: the archive lists its own months, which must be
	// exactly the live campaign's.
	replay, err := NewAssessment(WithSource(src), WithWindowSize(window))
	if err != nil {
		t.Fatal(err)
	}
	resReplay, err := replay.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if len(resReplay.Monthly) != months+1 {
		t.Fatalf("replay evaluated %d months, want %d", len(resReplay.Monthly), months+1)
	}
	if !reflect.DeepEqual(resLive.Monthly, resReplay.Monthly) {
		t.Fatalf("replayed monthly series differ from live:\n%+v\nvs\n%+v", resLive.Monthly, resReplay.Monthly)
	}
	if !reflect.DeepEqual(resLive.Table, resReplay.Table) {
		t.Fatal("replayed Table I differs from live")
	}
	for d := range resLive.References {
		if !resLive.References[d].Equal(resReplay.References[d]) {
			t.Fatalf("device %d: replayed reference differs", d)
		}
	}
}

// fhwMetric is the test's externally registered metric: the mean
// fractional Hamming weight, accumulated in the exact order of the
// built-in FHW accumulator so the values must be bit-identical.
type fhwAcc struct {
	sum   float64
	count int
}

func (a *fhwAcc) Add(m *Pattern) error {
	a.sum += m.FractionalHammingWeight()
	a.count++
	return nil
}

func (a *fhwAcc) Value() (float64, error) {
	if a.count == 0 {
		return 0, fmt.Errorf("empty window")
	}
	return a.sum / float64(a.count), nil
}

// TestCustomMetricBothPaths registers an external Metric and asserts it
// produces correct (bit-identical to the built-in oracle) values on both
// execution paths — direct sampling and the full rig simulation.
func TestCustomMetricBothPaths(t *testing.T) {
	run := func(harness bool) *Results {
		t.Helper()
		opts := []Option{
			WithDevices(4),
			WithMonths(2),
			WithWindowSize(40),
			WithMetrics(NewMetric("fhw2", func(month, device int, ref *Pattern) (MetricAccumulator, error) {
				return &fhwAcc{}, nil
			})),
		}
		if harness {
			opts = append(opts, WithHarness())
		}
		a, err := NewAssessment(opts...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := a.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	direct, viaRig := run(false), run(true)
	for _, res := range []*Results{direct, viaRig} {
		for m := range res.Monthly {
			vals := res.Monthly[m].Custom["fhw2"]
			if len(vals) != 4 {
				t.Fatalf("month %d: custom values %v", m, vals)
			}
			for d, v := range vals {
				if want := res.Monthly[m].Devices[d].FHW; v != want {
					t.Fatalf("month %d device %d: custom FHW %v != built-in %v", m, d, v, want)
				}
			}
		}
	}
	for m := range direct.Monthly {
		if !reflect.DeepEqual(direct.Monthly[m].Custom, viaRig.Monthly[m].Custom) {
			t.Fatalf("month %d: custom metric differs across paths", m)
		}
	}
}

// TestCrossMetricBothPaths registers an external CROSS-device metric —
// the mean pairwise fractional Hamming distance over the window-first
// patterns, folded in the same i<j order as the built-in BCHD — and
// asserts bit-identity with the built-in value on both execution paths.
func TestCrossMetricBothPaths(t *testing.T) {
	bchd := NewCrossMetric("bchd2", func(month int, firsts []*Pattern) (float64, error) {
		sum, pairs := 0.0, 0
		for i := 0; i < len(firsts); i++ {
			for j := i + 1; j < len(firsts); j++ {
				f, err := firsts[i].FractionalHammingDistance(firsts[j])
				if err != nil {
					return 0, err
				}
				sum += f
				pairs++
			}
		}
		return sum / float64(pairs), nil
	})
	run := func(harness bool) *Results {
		t.Helper()
		opts := []Option{
			WithDevices(4),
			WithMonths(1),
			WithWindowSize(30),
			WithCrossMetrics(bchd),
		}
		if harness {
			opts = append(opts, WithHarness())
		}
		a, err := NewAssessment(opts...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := a.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, res := range []*Results{run(false), run(true)} {
		series := res.CrossCustomSeries("bchd2")
		if len(series) != 2 {
			t.Fatalf("cross series length = %d", len(series))
		}
		for m := range res.Monthly {
			if got, want := res.Monthly[m].CrossCustom["bchd2"], res.Monthly[m].BCHDMean; got != want {
				t.Fatalf("month %d: cross metric %v != built-in BCHD mean %v", m, got, want)
			}
		}
	}
}

// TestAssessmentTypedErrors exercises the errors.Is-matchable error
// surface of the builder and engine.
func TestAssessmentTypedErrors(t *testing.T) {
	// The device count is validated when the engine starts.
	oneDev, err := NewAssessment(WithDevices(1), WithMonths(1), WithWindowSize(10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := oneDev.Run(context.Background()); !errors.Is(err, ErrConfig) {
		t.Fatalf("1 device: err = %v, want ErrConfig", err)
	}
	// The window size is validated at option time (before any side
	// effect like truncating an archive file).
	if _, err := NewAssessment(smallOpts(WithWindowSize(1))...); !errors.Is(err, ErrConfig) {
		t.Fatalf("window 1: err = %v, want ErrConfig", err)
	}
	if _, err := NewAssessment(WithSource(nil)); !errors.Is(err, ErrConfig) {
		t.Fatalf("nil source: err = %v, want ErrConfig", err)
	}
	if _, err := NewAssessment(WithMonths(-1)); !errors.Is(err, ErrConfig) {
		t.Fatalf("negative months: err = %v, want ErrConfig", err)
	}
	// Months 0 would yield a single evaluation and an all-zero Table I;
	// the legacy Config rejected it and so must the builder.
	if _, err := NewAssessment(WithMonths(0)); !errors.Is(err, ErrConfig) {
		t.Fatalf("zero months: err = %v, want ErrConfig", err)
	}
	// An empty month list must fail fast, not fall back to the default
	// 25-month campaign.
	if _, err := NewAssessment(WithMonthList(nil)); !errors.Is(err, ErrConfig) {
		t.Fatalf("empty month list: err = %v, want ErrConfig", err)
	}
	src, err := NewSimulatedSource(mustProfile(t), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAssessment(WithSource(src), WithDevices(4)); !errors.Is(err, ErrConfig) {
		t.Fatalf("source + sim options: err = %v, want ErrConfig", err)
	}

	// One-shot: a second Run fails typed.
	done, err := NewAssessment(smallOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := done.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := done.Run(context.Background()); !errors.Is(err, ErrAlreadyRun) {
		t.Fatalf("second run: err = %v, want ErrAlreadyRun", err)
	}
	// ...but a Run that failed before measuring anything (configuration
	// error) must report the same error again on retry, not ErrAlreadyRun.
	oddRig, err := NewAssessment(WithHarness(), WithDevices(3), WithMonths(1), WithWindowSize(10))
	if err != nil {
		t.Fatal(err)
	}
	for try := 0; try < 2; try++ {
		if _, err := oddRig.Run(context.Background()); !errors.Is(err, ErrConfig) {
			t.Fatalf("odd rig try %d: err = %v, want ErrConfig", try, err)
		}
	}

	// An archive whose boards only hold short windows has no months.
	var buf bytes.Buffer
	jw := store.NewJSONLWriter(&buf)
	rig, err := NewRigSource(mustProfile(t), 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	rig.SetTap(jw.Write)
	short, err := NewAssessment(WithSource(rig), WithMonthList([]int{0}), WithWindowSize(10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := short.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := jw.Flush(); err != nil {
		t.Fatal(err)
	}
	arch, err := NewArchiveSource(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	noMonths, err := NewAssessment(WithSource(arch), WithWindowSize(500))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := noMonths.Run(context.Background()); !errors.Is(err, ErrNoMonths) {
		t.Fatalf("short archive: err = %v, want ErrNoMonths", err)
	}
	// Replaying more months than the archive holds fails ErrShortWindow.
	arch2, err := NewArchiveSource(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := NewAssessment(WithSource(arch2), WithMonths(5), WithWindowSize(10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a2.Run(context.Background()); !errors.Is(err, ErrShortWindow) {
		t.Fatalf("over-long replay: err = %v, want ErrShortWindow", err)
	}

	// An archive truncated mid-window (interrupted collection) loses its
	// trailing month for every board — here the only month, so discovery
	// finds nothing and fails typed rather than replaying short windows.
	trimmed := buf.Bytes()
	trimmed = trimmed[:bytes.LastIndexByte(trimmed[:len(trimmed)-1], '\n')+1]
	truncated, err := NewArchiveSource(bytes.NewReader(trimmed))
	if err != nil {
		t.Fatal(err)
	}
	a3, err := NewAssessment(WithSource(truncated), WithWindowSize(10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a3.Run(context.Background()); !errors.Is(err, ErrNoMonths) {
		t.Fatalf("truncated archive: err = %v, want ErrNoMonths", err)
	}
}

// TestArchiveReplayToleratesInterruptedTail: killing a collection mid-way
// through its last monthly window must not make the archive unreplayable
// — the complete months still evaluate, the partial tail is dropped.
func TestArchiveReplayToleratesInterruptedTail(t *testing.T) {
	var buf bytes.Buffer
	jw := store.NewJSONLWriter(&buf)
	rig, err := NewRigSource(mustProfile(t), 2, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	rig.SetTap(jw.Write)
	collect, err := NewAssessment(WithSource(rig), WithMonths(1), WithWindowSize(10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := collect.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := jw.Flush(); err != nil {
		t.Fatal(err)
	}
	// Drop the final record: month 1 is now short on one board.
	trimmed := buf.Bytes()
	trimmed = trimmed[:bytes.LastIndexByte(trimmed[:len(trimmed)-1], '\n')+1]
	src, err := NewArchiveSource(bytes.NewReader(trimmed))
	if err != nil {
		t.Fatal(err)
	}
	replay, err := NewAssessment(WithSource(src), WithWindowSize(10))
	if err != nil {
		t.Fatal(err)
	}
	res, err := replay.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Monthly) != 1 || res.Monthly[0].Month != 0 {
		t.Fatalf("interrupted archive replayed months %+v, want just month 0", res.Monthly)
	}
}

func mustProfile(t *testing.T) DeviceProfile {
	t.Helper()
	p, err := ATmega32u4()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestLegacyShimMatchesAssessment: the deprecated Config surface is a
// shim over the new engine — RunCampaign and an equivalent Assessment
// must produce bit-identical results.
func TestLegacyShimMatchesAssessment(t *testing.T) {
	cfg, err := DefaultCampaign()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Devices, cfg.Months, cfg.WindowSize = 3, 2, 50
	legacy, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAssessment(
		WithDevices(cfg.Devices),
		WithMonths(cfg.Months),
		WithWindowSize(cfg.WindowSize),
		WithSeed(cfg.Seed),
	)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := a.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy.Monthly, fresh.Monthly) || !reflect.DeepEqual(legacy.Table, fresh.Table) {
		t.Fatal("legacy shim and Assessment disagree")
	}
}

// TestAssessmentWorkersBitIdentical: the worker bound schedules, it must
// not change results.
func TestAssessmentWorkersBitIdentical(t *testing.T) {
	run := func(workers int) *Results {
		t.Helper()
		a, err := NewAssessment(smallOpts(WithWorkers(workers))...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := a.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	unbounded, one := run(0), run(1)
	if !reflect.DeepEqual(unbounded.Monthly, one.Monthly) {
		t.Fatal("worker bound changed results")
	}
}
