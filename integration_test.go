package sramaging

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/entropy"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/silicon"
	"repro/internal/store"
)

// TestIntegrationArchivePipeline exercises the paper's complete data flow:
// rig simulation -> Raspberry Pi JSON archive -> JSONL serialisation ->
// offline window selection -> metric computation, and checks the offline
// numbers agree with the in-memory campaign on the same seed.
func TestIntegrationArchivePipeline(t *testing.T) {
	profile, err := silicon.ATmega32u4()
	if err != nil {
		t.Fatal(err)
	}
	const (
		devices = 4
		window  = 40
		seed    = 777
	)

	// Phase 1: collect two monthly windows through the full rig.
	hcfg := harness.DefaultConfig(profile, seed)
	hcfg.SlavesPerLayer = devices / 2
	rig, err := harness.New(hcfg)
	if err != nil {
		t.Fatal(err)
	}
	var jsonl bytes.Buffer
	for m := 0; m <= 1; m++ {
		for _, a := range rig.Arrays() {
			if err := a.AgeTo(float64(m)); err != nil {
				t.Fatal(err)
			}
		}
		rig.Archive().Reset()
		if err := rig.RunWindow(window, store.MonthlyWindowStart(m)); err != nil {
			t.Fatal(err)
		}
		if err := rig.Archive().WriteArchiveJSONL(&jsonl); err != nil {
			t.Fatal(err)
		}
	}

	// Phase 2: offline analysis from the serialised archive.
	archive, err := store.ReadJSONL(&jsonl)
	if err != nil {
		t.Fatal(err)
	}
	if got := archive.Len(); got != devices*window*2 {
		t.Fatalf("archive has %d records, want %d", got, devices*window*2)
	}

	offlineWCHD := make([]float64, devices)
	for d := 0; d < devices; d++ {
		w0, err := archive.Window(d, store.MonthlyWindowStart(0), window)
		if err != nil {
			t.Fatal(err)
		}
		patterns := store.Patterns(w0)
		wc, err := metrics.WithinClassHD(patterns[0], patterns)
		if err != nil {
			t.Fatal(err)
		}
		offlineWCHD[d] = wc.Mean
		counts, n, err := entropy.OneCounts(patterns)
		if err != nil {
			t.Fatal(err)
		}
		stable, err := entropy.StableCellRatio(counts, n)
		if err != nil {
			t.Fatal(err)
		}
		if stable < 0.8 || stable > 0.98 {
			t.Errorf("board %d offline stable ratio = %v", d, stable)
		}
	}

	// Phase 3: in-memory campaign on the same seed must agree exactly.
	cfg := core.Config{Profile: profile, Devices: devices, Months: 1,
		WindowSize: window, Seed: seed, UseHarness: true}
	camp, err := core.NewCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < devices; d++ {
		if math.Abs(res.Monthly[0].Devices[d].WCHD-offlineWCHD[d]) > 1e-12 {
			t.Fatalf("board %d: offline WCHD %v != campaign %v",
				d, offlineWCHD[d], res.Monthly[0].Devices[d].WCHD)
		}
	}
}

// TestIntegrationKeyLifecycleAcrossAging enrolls a key on a rig board and
// reconstructs it after the full simulated two years — the §II-A1
// application running on the complete stack.
func TestIntegrationKeyLifecycleAcrossAging(t *testing.T) {
	profile, err := silicon.ATmega32u4()
	if err != nil {
		t.Fatal(err)
	}
	chip, err := NewChip(profile, 314)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := NewKeyExtractor()
	if err != nil {
		t.Fatal(err)
	}
	n := ext.ResponseBits()
	enroll, err := chip.PowerUpWindow()
	if err != nil {
		t.Fatal(err)
	}
	key, helper, err := ext.Enroll(enroll.Slice(0, n), rng.New(0x5EC))
	if err != nil {
		t.Fatal(err)
	}
	for _, month := range []float64{6, 12, 18, 24} {
		if err := chip.AgeTo(month); err != nil {
			t.Fatal(err)
		}
		w, err := chip.PowerUpWindow()
		if err != nil {
			t.Fatal(err)
		}
		got, err := ext.Reconstruct(w.Slice(0, n), helper)
		if err != nil {
			t.Fatalf("month %v: %v", month, err)
		}
		if !bytes.Equal(got, key) {
			t.Fatalf("month %v: wrong key", month)
		}
	}
}

// TestIntegrationTRNGSurvivesAging checks the TRNG stays healthy and
// unbiased on an end-of-life chip.
func TestIntegrationTRNGSurvivesAging(t *testing.T) {
	profile, err := silicon.ATmega32u4()
	if err != nil {
		t.Fatal(err)
	}
	chip, err := NewChip(profile, 315)
	if err != nil {
		t.Fatal(err)
	}
	if err := chip.AgeTo(24); err != nil {
		t.Fatal(err)
	}
	gen, err := NewTRNG(chip)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	total := 0
	for total < len(buf) {
		n, err := gen.Read(buf[total:])
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	ones := 0
	for _, b := range buf {
		for i := 0; i < 8; i++ {
			ones += int(b >> uint(i) & 1)
		}
	}
	frac := float64(ones) / float64(len(buf)*8)
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("aged TRNG output bias = %v", frac)
	}
	if !gen.Healthy() {
		t.Fatal("generator unhealthy")
	}
}
