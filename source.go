package sramaging

import (
	"io"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/store"
)

// Re-exported measurement and source types. A Source is where an
// assessment's measurements come from; the three built-in implementations
// make offline archive replay and live (simulated) campaigns the same
// Assessment call, and external implementations of the Source interface
// plug into the same engine.
type (
	// Pattern is one SRAM power-up read-out: a packed bit vector with
	// Hamming-space primitives (Clone, Xor, HammingWeight, ...).
	Pattern = bitvec.Vector
	// Record is one archived measurement: a Pattern plus board, sequence
	// and wall-clock capture metadata (the rig's JSONL schema).
	Record = store.Record
	// Source supplies the monthly evaluation windows of an Assessment.
	Source = core.Source
	// Sink receives a window's measurements: device index plus Pattern.
	Sink = core.Sink
	// MonthLister is implemented by bounded sources (archive replay)
	// that know which month indices they can serve.
	MonthLister = core.MonthLister
	// WorkerSetter is implemented by sources with parallelisable
	// delivery; WithWorkers forwards the bound here.
	WorkerSetter = core.WorkerSetter
	// SimulatedSource samples simulated SRAM chips directly — the fast
	// campaign path.
	SimulatedSource = core.SimSource
	// RigSource routes every window through the full measurement-rig
	// simulation (power switch, boot, I2C, record forwarding) and can
	// tap the record stream to an archive writer.
	RigSource = core.RigSource
	// ArchiveSource replays a recorded measurement archive.
	ArchiveSource = core.ArchiveSource
)

// NewPattern returns an all-zero pattern of the given bit width — the
// scratch space custom Metric accumulators build on.
func NewPattern(bits int) *Pattern { return bitvec.New(bits) }

// NewSimulatedSource builds a direct-sampling source: devices simulated
// chips of the profile, seeded with the campaign seed (the same
// per-device derivation the rig uses, so both sources produce
// bit-identical measurement streams).
func NewSimulatedSource(profile DeviceProfile, devices int, seed uint64) (*SimulatedSource, error) {
	return core.NewSimSource(profile, devices, seed)
}

// NewRigSource builds a full-fidelity source: the paper's two-layer
// measurement rig with devices boards (an even count) and the given I2C
// byte-corruption rate. Use (*RigSource).SetTap to archive the record
// stream (e.g. through a store JSONL writer) while the assessment runs.
func NewRigSource(profile DeviceProfile, devices int, seed uint64, i2cErrorRate float64) (*RigSource, error) {
	return core.NewRigSource(profile, devices, seed, i2cErrorRate)
}

// NewArchiveSource parses a measurement archive (as written by agingtest
// -archive, a tapped RigSource, or a real rig using the same schema)
// into a replay source. All archive formats are accepted and detected
// by the leading bytes: the binary codec's versioned magic selects
// binary decoding, anything else parses as JSON lines (see DESIGN.md §5
// and §6 for the format trade-offs). The source implements MonthLister,
// so an Assessment without WithMonths evaluates exactly the months the
// archive holds complete windows for.
//
// This constructor materialises the stream in memory first; for files,
// OpenArchiveSource replays month windows straight from disk through
// the archive index instead.
func NewArchiveSource(r io.Reader) (*ArchiveSource, error) {
	a, err := store.ReadArchive(r)
	if err != nil {
		return nil, err
	}
	return core.NewArchiveSource(a)
}

// OpenArchiveSource opens the measurement archive file at path for
// seek-based replay: an indexed (.bin v2) archive opens in O(1) via its
// trailer index and replays each month's windows directly from the file
// without ever materialising the archive in memory; v1 binary and JSONL
// archives are scanned once to build the same index. The caller must
// Close the returned source.
func OpenArchiveSource(path string) (*ArchiveSource, error) {
	return core.OpenArchiveSource(path)
}

// ArchiveInfo describes a measurement archive: format, whether a
// trailer index is present, and its record/board/month shape.
type ArchiveInfo = store.ArchiveInfo

// InspectArchive opens the archive at path just far enough to describe
// it — for an indexed archive only the footer is read.
func InspectArchive(path string) (ArchiveInfo, error) {
	return store.InspectFile(path)
}

// UpgradeArchive rewrites the archive at path in the indexed binary
// format (v2): board-major records plus a trailer index mapping every
// (board, month) segment, so replays seek instead of scan. The rewrite
// is atomic (temp file + rename) and idempotent — it reports false,
// touching nothing, when the archive already carries a valid index.
func UpgradeArchive(path string) (bool, error) {
	return store.UpgradeFile(path)
}

// RecordWriter is a streaming archive sink: Write one Record at a time,
// Flush when done. Install one behind a source's record tap (RigSource
// or ShardedSource SetTap) to archive a campaign while it runs.
type RecordWriter = store.RecordWriter

// NewJSONLRecordWriter returns a record writer in the JSON-lines schema —
// one self-describing object per line, greppable and jq-able, the format
// to reach for when humans will read the archive.
func NewJSONLRecordWriter(w io.Writer) RecordWriter { return store.NewJSONLWriter(w) }

// NewBinaryRecordWriter returns a record writer in the binary codec —
// a fixed header plus raw pattern words per record, roughly half the
// bytes and none of the hex/JSON churn, the format for large campaigns
// and machine-to-machine transport. The writer emits the indexed v2
// format: Flush appends a trailer index mapping every (board, month)
// segment, so replay tools seek to a month in O(1) instead of scanning
// the archive. NewArchiveSource detects either binary version by its
// leading magic.
func NewBinaryRecordWriter(w io.Writer) RecordWriter { return store.NewBinaryWriter(w) }

// NewRecordWriterForPath picks the archive format from the path's
// extension, like agingtest -archive does: `.bin` selects the binary
// codec, anything else JSON lines.
func NewRecordWriterForPath(path string, w io.Writer) RecordWriter {
	return store.NewWriterForPath(path, w)
}
