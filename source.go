package sramaging

import (
	"io"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/store"
)

// Re-exported measurement and source types. A Source is where an
// assessment's measurements come from; the three built-in implementations
// make offline archive replay and live (simulated) campaigns the same
// Assessment call, and external implementations of the Source interface
// plug into the same engine.
type (
	// Pattern is one SRAM power-up read-out: a packed bit vector with
	// Hamming-space primitives (Clone, Xor, HammingWeight, ...).
	Pattern = bitvec.Vector
	// Record is one archived measurement: a Pattern plus board, sequence
	// and wall-clock capture metadata (the rig's JSONL schema).
	Record = store.Record
	// Source supplies the monthly evaluation windows of an Assessment.
	Source = core.Source
	// Sink receives a window's measurements: device index plus Pattern.
	Sink = core.Sink
	// MonthLister is implemented by bounded sources (archive replay)
	// that know which month indices they can serve.
	MonthLister = core.MonthLister
	// WorkerSetter is implemented by sources with parallelisable
	// delivery; WithWorkers forwards the bound here.
	WorkerSetter = core.WorkerSetter
	// SimulatedSource samples simulated SRAM chips directly — the fast
	// campaign path.
	SimulatedSource = core.SimSource
	// RigSource routes every window through the full measurement-rig
	// simulation (power switch, boot, I2C, record forwarding) and can
	// tap the record stream to an archive writer.
	RigSource = core.RigSource
	// ArchiveSource replays a recorded measurement archive.
	ArchiveSource = core.ArchiveSource
)

// NewPattern returns an all-zero pattern of the given bit width — the
// scratch space custom Metric accumulators build on.
func NewPattern(bits int) *Pattern { return bitvec.New(bits) }

// NewSimulatedSource builds a direct-sampling source: devices simulated
// chips of the profile, seeded with the campaign seed (the same
// per-device derivation the rig uses, so both sources produce
// bit-identical measurement streams).
func NewSimulatedSource(profile DeviceProfile, devices int, seed uint64) (*SimulatedSource, error) {
	return core.NewSimSource(profile, devices, seed)
}

// NewRigSource builds a full-fidelity source: the paper's two-layer
// measurement rig with devices boards (an even count) and the given I2C
// byte-corruption rate. Use (*RigSource).SetTap to archive the record
// stream (e.g. through a store JSONL writer) while the assessment runs.
func NewRigSource(profile DeviceProfile, devices int, seed uint64, i2cErrorRate float64) (*RigSource, error) {
	return core.NewRigSource(profile, devices, seed, i2cErrorRate)
}

// NewArchiveSource parses a measurement archive (as written by agingtest
// -archive, a tapped RigSource, or a real rig using the same schema)
// into a replay source. Both archive formats are accepted and detected
// by the leading bytes: the binary codec's versioned magic selects
// binary decoding, anything else parses as JSON lines (see DESIGN.md §5
// for the format trade-off). The source implements MonthLister, so an
// Assessment without WithMonths evaluates exactly the months the archive
// holds complete windows for.
func NewArchiveSource(r io.Reader) (*ArchiveSource, error) {
	a, err := store.ReadArchive(r)
	if err != nil {
		return nil, err
	}
	return core.NewArchiveSource(a)
}

// RecordWriter is a streaming archive sink: Write one Record at a time,
// Flush when done. Install one behind a source's record tap (RigSource
// or ShardedSource SetTap) to archive a campaign while it runs.
type RecordWriter = store.RecordWriter

// NewJSONLRecordWriter returns a record writer in the JSON-lines schema —
// one self-describing object per line, greppable and jq-able, the format
// to reach for when humans will read the archive.
func NewJSONLRecordWriter(w io.Writer) RecordWriter { return store.NewJSONLWriter(w) }

// NewBinaryRecordWriter returns a record writer in the binary codec —
// a fixed header plus raw pattern words per record, roughly half the
// bytes and none of the hex/JSON churn, the format for large campaigns
// and machine-to-machine transport. NewArchiveSource detects it by its
// leading magic.
func NewBinaryRecordWriter(w io.Writer) RecordWriter { return store.NewBinaryWriter(w) }

// NewRecordWriterForPath picks the archive format from the path's
// extension, like agingtest -archive does: `.bin` selects the binary
// codec, anything else JSON lines.
func NewRecordWriterForPath(path string, w io.Writer) RecordWriter {
	return store.NewWriterForPath(path, w)
}
