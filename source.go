package sramaging

import (
	"io"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/store"
)

// Re-exported measurement and source types. A Source is where an
// assessment's measurements come from; the three built-in implementations
// make offline archive replay and live (simulated) campaigns the same
// Assessment call, and external implementations of the Source interface
// plug into the same engine.
type (
	// Pattern is one SRAM power-up read-out: a packed bit vector with
	// Hamming-space primitives (Clone, Xor, HammingWeight, ...).
	Pattern = bitvec.Vector
	// Record is one archived measurement: a Pattern plus board, sequence
	// and wall-clock capture metadata (the rig's JSONL schema).
	Record = store.Record
	// Source supplies the monthly evaluation windows of an Assessment.
	Source = core.Source
	// Sink receives a window's measurements: device index plus Pattern.
	Sink = core.Sink
	// MonthLister is implemented by bounded sources (archive replay)
	// that know which month indices they can serve.
	MonthLister = core.MonthLister
	// WorkerSetter is implemented by sources with parallelisable
	// delivery; WithWorkers forwards the bound here.
	WorkerSetter = core.WorkerSetter
	// SimulatedSource samples simulated SRAM chips directly — the fast
	// campaign path.
	SimulatedSource = core.SimSource
	// RigSource routes every window through the full measurement-rig
	// simulation (power switch, boot, I2C, record forwarding) and can
	// tap the record stream to an archive writer.
	RigSource = core.RigSource
	// ArchiveSource replays a recorded measurement archive.
	ArchiveSource = core.ArchiveSource
)

// NewPattern returns an all-zero pattern of the given bit width — the
// scratch space custom Metric accumulators build on.
func NewPattern(bits int) *Pattern { return bitvec.New(bits) }

// NewSimulatedSource builds a direct-sampling source: devices simulated
// chips of the profile, seeded with the campaign seed (the same
// per-device derivation the rig uses, so both sources produce
// bit-identical measurement streams).
func NewSimulatedSource(profile DeviceProfile, devices int, seed uint64) (*SimulatedSource, error) {
	return core.NewSimSource(profile, devices, seed)
}

// NewRigSource builds a full-fidelity source: the paper's two-layer
// measurement rig with devices boards (an even count) and the given I2C
// byte-corruption rate. Use (*RigSource).SetTap to archive the record
// stream (e.g. through a store JSONL writer) while the assessment runs.
func NewRigSource(profile DeviceProfile, devices int, seed uint64, i2cErrorRate float64) (*RigSource, error) {
	return core.NewRigSource(profile, devices, seed, i2cErrorRate)
}

// NewArchiveSource parses a JSON-lines measurement archive (as written by
// agingtest -archive, a tapped RigSource, or a real rig using the same
// schema) into a replay source. The source implements MonthLister, so an
// Assessment without WithMonths evaluates exactly the months the archive
// holds complete windows for.
func NewArchiveSource(r io.Reader) (*ArchiveSource, error) {
	a, err := store.ReadJSONL(r)
	if err != nil {
		return nil, err
	}
	return core.NewArchiveSource(a)
}
