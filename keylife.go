package sramaging

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/fuzzy"
	"repro/internal/keylife"
	"repro/internal/sweep"
)

// KeyExtractor is the code-offset fuzzy extractor behind key-lifecycle
// campaigns (see NewKeyExtractor for the standard scheme).
type KeyExtractor = fuzzy.Extractor

// Key-lifecycle metric series names, as keyed in MonthEval.Custom (per
// device) and MonthEval.CrossCustom (per fleet).
const (
	KeyLifeSuccess     = keylife.MetricSuccess
	KeyLifeBitErrors   = keylife.MetricBitErrors
	KeyLifeMargin      = keylife.MetricMargin
	KeyLifeFailProb    = keylife.MetricFailProb
	KeyLifeLeakageBits = keylife.CrossLeakageBits
	KeyLifeWorstMargin = keylife.CrossWorstMargin
)

// KeyLifeConfig tunes WithKeyLifecycle. The zero value selects the
// standard scheme: the NewKeyExtractor code, burn-in screening at the
// hot and hot-overvoltage corners over a 50-measurement window, and
// deterministic per-device enrollment secrets.
type KeyLifeConfig struct {
	// Extractor overrides the fuzzy-extractor scheme (nil: the standard
	// NewKeyExtractor construction). The code must have a known
	// correction radius (margins are undefined otherwise).
	Extractor *KeyExtractor
	// SecretSeed seeds the deterministic enrollment secrets; zero selects
	// the package default.
	SecretSeed uint64
	// Corners are the burn-in screening stress corners (nil: HotCorner
	// and HotHighVoltage).
	Corners []Scenario
	// BurnInWindow is the measurements per screening corner (<= 0: 50).
	BurnInWindow int
	// ScreenProfile overrides the device profile the screening round
	// simulates (zero value: the assessment's profile). Set it when
	// replaying an archive recorded from a non-default profile.
	ScreenProfile DeviceProfile
	// ScreenSeed overrides the campaign seed the screening round derives
	// its streams from (0: the assessment's seed). Set it when replaying
	// an archive recorded with a non-default seed.
	ScreenSeed uint64
}

// WithKeyLifecycle turns the campaign into a key-provisioning pipeline
// (paper §II-A1): the first evaluated month runs burn-in screening,
// index-selection debiasing, and fuzzy-extractor enrollment per device;
// every later month streams reconstruction success, bit errors, the
// worst block's correction margin, and the model-predicted key-failure
// probability as Metric/CrossMetric series in the Results (the KeyLife*
// series names). Composes with sim, rig, archive-replay, sharded, and
// sweep execution; the streamed series are bit-identical across all of
// them for the same campaign.
func WithKeyLifecycle(cfg KeyLifeConfig) Option {
	return func(a *Assessment) error {
		if cfg.BurnInWindow < 0 {
			return fmt.Errorf("%w: negative burn-in window %d", ErrConfig, cfg.BurnInWindow)
		}
		for _, sc := range cfg.Corners {
			if err := sc.Validate(); err != nil {
				return fmt.Errorf("%w: %v", ErrConfig, err)
			}
		}
		a.keylife = true
		a.keylifeCfg = cfg
		return nil
	}
}

// keylifeConfig resolves the internal workload configuration against the
// assessment's own simulation parameters.
func (a *Assessment) keylifeConfig(devices int) (keylife.Config, error) {
	cfg := a.keylifeCfg
	profile := cfg.ScreenProfile
	if profile.Cells() == 0 {
		profile = a.profile
		if !a.profileSet {
			var err error
			if profile, err = ATmega32u4(); err != nil {
				return keylife.Config{}, err
			}
		}
	}
	seed := cfg.ScreenSeed
	if seed == 0 {
		seed = a.seed
	}
	return keylife.Config{
		Profile:      profile,
		Devices:      devices,
		Seed:         seed,
		SecretSeed:   cfg.SecretSeed,
		Extractor:    cfg.Extractor,
		Corners:      cfg.Corners,
		BurnInWindow: cfg.BurnInWindow,
	}, nil
}

// keylifeWorkload screens and builds one workload for a plain Run.
func (a *Assessment) keylifeWorkload(ctx context.Context, devices int) (*keylife.Workload, error) {
	cfg, err := a.keylifeConfig(devices)
	if err != nil {
		return nil, err
	}
	return keylife.New(ctx, cfg)
}

// keylifePointMetrics screens ONCE and returns the sweep's per-point
// metric factory: each grid point gets its own workload (enrollment is
// stateful; points run concurrently) sharing the screening masks.
func (a *Assessment) keylifePointMetrics(ctx context.Context) (func(context.Context, Scenario) ([]Metric, []CrossMetric, error), error) {
	cfg, err := a.keylifeConfig(a.devices)
	if err != nil {
		return nil, err
	}
	masks, err := sweep.ScreenStableCells(ctx, cfg.Profile, cfg.Devices, cfg.Seed, cornersOrDefault(cfg.Corners), burnInOrDefault(cfg.BurnInWindow))
	if err != nil {
		return nil, fmt.Errorf("keylife: burn-in screening: %w", err)
	}
	cfg.Masks = masks
	return func(pctx context.Context, sc Scenario) ([]Metric, []CrossMetric, error) {
		wl, err := keylife.New(pctx, cfg)
		if err != nil {
			return nil, nil, err
		}
		return wl.Metrics(), wl.CrossMetrics(), nil
	}, nil
}

func cornersOrDefault(scs []Scenario) []Scenario {
	if scs != nil {
		return scs
	}
	return keylife.DefaultCorners()
}

func burnInOrDefault(n int) int {
	if n > 0 {
		return n
	}
	return keylife.DefaultBurnInWindow
}

// RenderKeyLifeTable formats the streamed key-lifecycle series of a
// Results as the key table of cmd/agingtest -keylife: one row per month
// with the fleet's reconstruction tally, worst remaining correction
// margin, worst observed bit-error count, and worst predicted failure
// probability. It returns "" when the Results carry no key-lifecycle
// series. The rendering is deterministic — byte-identical results render
// byte-identical tables.
func RenderKeyLifeTable(res *Results) string {
	success := res.CustomSeries(KeyLifeSuccess)
	bitErrs := res.CustomSeries(KeyLifeBitErrors)
	margins := res.CustomSeries(KeyLifeMargin)
	failPs := res.CustomSeries(KeyLifeFailProb)
	leak := res.CrossCustomSeries(KeyLifeLeakageBits)
	// CustomSeries is device-major: success[device][evaluation].
	if len(success) == 0 || len(success[0]) != len(res.Monthly) {
		return ""
	}
	var sb strings.Builder
	sb.WriteString("KEY LIFECYCLE (streamed enrollment -> monthly reconstruction)\n")
	if len(leak) > 0 {
		fmt.Fprintf(&sb, "helper-data leakage bound: %.0f bits\n", leak[0])
	}
	fmt.Fprintf(&sb, "%-6s %9s %14s %16s %17s\n", "month", "recon", "worst margin", "max bit errors", "worst fail prob")
	for i := range res.Monthly {
		ok, n := 0, len(success)
		for d := range success {
			if success[d][i] == 1 {
				ok++
			}
		}
		worstMargin, maxErrs, worstFail := worstAt(margins, i, false), worstAt(bitErrs, i, true), worstAt(failPs, i, true)
		fmt.Fprintf(&sb, "%-6s %5d/%-3d %14.0f %16.0f %17.3e\n",
			res.Monthly[i].Label, ok, n, worstMargin, maxErrs, worstFail)
	}
	return sb.String()
}

// worstAt returns the max (or min) across devices of a device-major
// series at evaluation i, or 0 when absent.
func worstAt(series [][]float64, i int, max bool) float64 {
	w, any := 0.0, false
	for d := range series {
		if i >= len(series[d]) {
			continue
		}
		v := series[d][i]
		if !any || (max && v > w) || (!max && v < w) {
			w, any = v, true
		}
	}
	return w
}
