package sramaging

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/shard"
)

// Re-exported sharded-execution types. A sharded campaign partitions the
// device population across worker processes — each running its slice
// through the same streaming engine — and merges the shard streams back
// into one Source, so Assessment.Run produces bit-identical Results to
// the single-process path for any shard count.
type (
	// ShardedSource fans a simulated or rig campaign across workers.
	ShardedSource = core.ShardedSource
	// ShardedArchiveSource fans archive replay across workers; it lists
	// the months every shard holds complete windows for (MonthLister).
	ShardedArchiveSource = core.ShardedArchiveSource
	// ShardTransport opens the byte stream to one worker: subprocesses
	// (ExecShardTransport) or in-process goroutines
	// (InProcessShardTransport, the default).
	ShardTransport = shard.Transport
)

// ErrShardWorker reports a shard worker that died or became unreachable
// mid-campaign. Worker-reported failures instead keep their assessment
// error class (ErrConfig, ErrShortWindow, ...) across the process
// boundary.
var ErrShardWorker = core.ErrShardWorker

// WithShards fans the campaign across n worker processes (n >= 1): the
// device population is partitioned into n contiguous shards, each served
// by a worker running the campaign's source for its slice, and the
// merged results are bit-identical to the single-process run. Workers
// are in-process goroutines by default; use WithShardTransport
// (ExecShardTransport) for real worker processes. Exclusive with
// WithSource — sharding is a way of EXECUTING the simulation options.
func WithShards(n int) Option {
	return func(a *Assessment) error {
		if n < 1 {
			return fmt.Errorf("%w: need >= 1 shard, got %d", ErrConfig, n)
		}
		a.shards = n
		return nil
	}
}

// WithShardTransport sets how shard workers are reached (default:
// InProcessShardTransport). Implies nothing without WithShards.
func WithShardTransport(t ShardTransport) Option {
	return func(a *Assessment) error {
		if t == nil {
			return fmt.Errorf("%w: nil shard transport", ErrConfig)
		}
		a.shardTransport = t
		return nil
	}
}

// ExecShardTransport spawns one shardworker subprocess per shard — the
// given binary (cmd/shardworker) with the shard protocol on its
// stdin/stdout and stderr passed through.
func ExecShardTransport(path string) ShardTransport { return shard.ExecTransport(path) }

// InProcessShardTransport runs each worker as a goroutine inside this
// process over an io.Pipe — the same wire protocol without the
// subprocess, used for tests and as the WithShards default.
func InProcessShardTransport() ShardTransport { return core.InProcessShardTransport() }

// NewShardedSimSource builds a direct-sampling source whose device
// population is partitioned across shards workers (nil transport: in
// process). Streams are bit-identical to NewSimulatedSource.
func NewShardedSimSource(profile DeviceProfile, devices int, seed uint64, shards int, t ShardTransport) (*ShardedSource, error) {
	return core.NewShardedSimSource(profile, devices, seed, shards, t)
}

// NewShardedRigSource builds a full-rig source whose record stream is
// partitioned across shards workers; use (*ShardedSource).SetTap to
// archive the merged stream while the assessment runs, exactly like
// (*RigSource).SetTap.
func NewShardedRigSource(profile DeviceProfile, devices int, seed uint64, i2cErrorRate float64, shards int, t ShardTransport) (*ShardedSource, error) {
	return core.NewShardedRigSource(profile, devices, seed, i2cErrorRate, shards, t)
}

// NewShardedArchiveSource shards replay of the JSONL archive at path
// across workers; every worker must be able to read the path. Without
// WithMonths an assessment over it evaluates the months every shard
// holds complete windows for.
func NewShardedArchiveSource(path string, shards int, t ShardTransport) (*ShardedArchiveSource, error) {
	return core.NewShardedArchiveSource(path, shards, t)
}
