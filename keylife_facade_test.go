package sramaging

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/ecc"
	"repro/internal/fuzzy"
	"repro/internal/store"
)

// keylifeOpts is the small key-lifecycle campaign the bit-identity tests
// share: big enough for screening to leave usable stable cells, small
// enough to run in milliseconds.
func keylifeOpts(extra ...Option) []Option {
	return append([]Option{
		WithDevices(8),
		WithMonths(3),
		WithWindowSize(40),
		WithKeyLifecycle(KeyLifeConfig{}),
	}, extra...)
}

// assertKeyLifeSeries sanity-checks that a Results actually carries the
// key-lifecycle series (a DeepEqual of two empty maps would vacuously
// pass the identity tests).
func assertKeyLifeSeries(t *testing.T, res *Results) {
	t.Helper()
	for _, name := range []string{KeyLifeSuccess, KeyLifeBitErrors, KeyLifeMargin, KeyLifeFailProb} {
		if res.CustomSeries(name) == nil {
			t.Fatalf("results carry no %q series", name)
		}
	}
	if res.CrossCustomSeries(KeyLifeLeakageBits) == nil {
		t.Fatalf("results carry no %q series", KeyLifeLeakageBits)
	}
}

// TestKeyLifecycleShardsBitIdentical: the key-lifecycle series (success,
// bit errors, margin, failure probability, leakage) are bit-identical
// between the direct run and sharded runs for shard counts 1, 2 and 7 —
// and so are the rendered key tables.
func TestKeyLifecycleShardsBitIdentical(t *testing.T) {
	plain, err := NewAssessment(keylifeOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertKeyLifeSeries(t, want)
	wantTable := RenderKeyLifeTable(want)
	if wantTable == "" {
		t.Fatal("empty key table for a key-lifecycle run")
	}
	for _, shards := range []int{1, 2, 7} {
		a, err := NewAssessment(keylifeOpts(WithShards(shards))...)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		got, err := a.Run(context.Background())
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		assertSameResults(t, want, got)
		if gotTable := RenderKeyLifeTable(got); gotTable != wantTable {
			t.Fatalf("shards=%d: key table differs:\n%s\nvs\n%s", shards, gotTable, wantTable)
		}
	}
}

// TestKeyLifecycleArchiveReplayBitIdentical: a recorded campaign replayed
// from its archive re-derives the identical key-lifecycle series — the
// screening round depends only on (profile, devices, seed), never on the
// campaign's Source.
func TestKeyLifecycleArchiveReplayBitIdentical(t *testing.T) {
	plain, err := NewAssessment(keylifeOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertKeyLifeSeries(t, want)

	// Record the same campaign through the rig's archive tap. The rig
	// path is bit-identical to direct sampling by construction.
	profile, err := ATmega32u4()
	if err != nil {
		t.Fatal(err)
	}
	rig, err := NewRigSource(profile, 8, 20170208, 0)
	if err != nil {
		t.Fatal(err)
	}
	apath := filepath.Join(t.TempDir(), "campaign.bin")
	f, err := os.Create(apath)
	if err != nil {
		t.Fatal(err)
	}
	w := store.NewWriterForPath(apath, f)
	rig.SetTap(w.Write)
	rec, err := NewAssessment(
		WithSource(rig),
		WithMonths(3),
		WithWindowSize(40),
		WithKeyLifecycle(KeyLifeConfig{}),
	)
	if err != nil {
		t.Fatal(err)
	}
	recRes, err := rec.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, want, recRes)

	// Replay the archive and demand the same series again.
	arch, err := OpenArchiveSource(apath)
	if err != nil {
		t.Fatal(err)
	}
	defer arch.Close()
	replay, err := NewAssessment(
		WithSource(arch),
		WithWindowSize(40),
		WithKeyLifecycle(KeyLifeConfig{}),
	)
	if err != nil {
		t.Fatal(err)
	}
	got, err := replay.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, want, got)
	if RenderKeyLifeTable(got) != RenderKeyLifeTable(want) {
		t.Fatal("key table differs between direct run and archive replay")
	}
}

// TestKeyLifecycleSweepBitIdentical: a key-lifecycle sweep is
// deterministic — the sharded sweep matches the in-process sweep per
// point, including the per-point key-lifecycle series built through the
// PointMetrics hook.
func TestKeyLifecycleSweepBitIdentical(t *testing.T) {
	opts := func(extra ...Option) []Option {
		return append([]Option{
			WithDevices(4),
			WithMonths(2),
			WithWindowSize(30),
			WithConditions(NominalRoomTemp, HotCorner),
			WithKeyLifecycle(KeyLifeConfig{}),
		}, extra...)
	}
	plain, err := NewAssessment(opts()...)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.RunSweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range want.Points {
		assertKeyLifeSeries(t, pt.Results)
	}
	sharded, err := NewAssessment(opts(WithShards(2))...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sharded.RunSweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Points) != len(got.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(want.Points), len(got.Points))
	}
	for i := range want.Points {
		if !reflect.DeepEqual(want.Points[i].Results.Monthly, got.Points[i].Results.Monthly) {
			t.Fatalf("point %q key-lifecycle series differ between in-process and sharded sweeps", want.Points[i].Scenario.Name)
		}
	}
}

// TestKeyLifecycleNominalTrajectory: over a 24-month nominal campaign the
// enrolled key reconstructs at EVERY evaluation on every device — the
// paper's headline claim that aging (WCHD growth toward ~3%) stays well
// inside the standard scheme's correction budget.
func TestKeyLifecycleNominalTrajectory(t *testing.T) {
	a, err := NewAssessment(
		WithDevices(4),
		WithMonths(24),
		WithWindowSize(60),
		WithKeyLifecycle(KeyLifeConfig{}),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertKeyLifeSeries(t, res)
	success := res.CustomSeries(KeyLifeSuccess)
	margins := res.CustomSeries(KeyLifeMargin)
	for d := range success {
		for m := range success[d] {
			if success[d][m] != 1 {
				t.Errorf("device %d month %d: reconstruction failed", d, m)
			}
			if margins[d][m] <= 0 {
				t.Errorf("device %d month %d: margin %v, want > 0", d, m, margins[d][m])
			}
		}
	}
	worst := res.CrossCustomSeries(KeyLifeWorstMargin)
	if len(worst) != 25 {
		t.Fatalf("worst-margin series has %d evaluations, want 25", len(worst))
	}
	table := RenderKeyLifeTable(res)
	if n := strings.Count(table, "4/4"); n != 25 {
		t.Fatalf("key table reports %d fully-reconstructed months, want 25:\n%s", n, table)
	}
}

// TestWithKeyLifecycleConfigErrors: invalid key-lifecycle configurations
// fail fast with ErrConfig — at option time where possible, before any
// measurement otherwise.
func TestWithKeyLifecycleConfigErrors(t *testing.T) {
	if _, err := NewAssessment(WithKeyLifecycle(KeyLifeConfig{BurnInWindow: -1})); !errors.Is(err, ErrConfig) {
		t.Fatalf("negative burn-in window: err = %v, want ErrConfig", err)
	}
	if _, err := NewAssessment(WithKeyLifecycle(KeyLifeConfig{Corners: []Scenario{{Name: "abszero", TempC: -300, Voltage: 5}}})); !errors.Is(err, ErrConfig) {
		t.Fatalf("invalid corner: err = %v, want ErrConfig", err)
	}
	// A code without a known correction radius cannot define margins.
	polar, err := ecc.NewPolar(64, 16, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := fuzzy.New(polar)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAssessment(
		WithDevices(2), WithMonths(1), WithWindowSize(20),
		WithKeyLifecycle(KeyLifeConfig{Extractor: ext}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Run(context.Background()); !errors.Is(err, ErrConfig) {
		t.Fatalf("polar extractor: err = %v, want ErrConfig", err)
	}
}
