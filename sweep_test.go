package sramaging

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"
)

// sweepGrid is the ≥4-point temperature grid of the acceptance criteria.
var sweepTemps = []float64{0, 25, 85, 125}

// TestRunSweepNominalBitIdentical is the satellite bit-identity
// requirement: a sweep with a single nominal point must produce
// byte-identical Results to a plain NewAssessment run with the same
// seed/profile/devices — and identical across Workers=1 vs Workers=N.
func TestRunSweepNominalBitIdentical(t *testing.T) {
	runSweep := func(workers int) *SweepResults {
		t.Helper()
		a, err := NewAssessment(smallOpts(
			WithWorkers(workers),
			WithConditions(NominalRoomTemp),
		)...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := a.RunSweep(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plainA, err := NewAssessment(smallOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := plainA.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	one, many := runSweep(1), runSweep(4)
	for name, swept := range map[string]*SweepResults{"workers=1": one, "workers=4": many} {
		if len(swept.Points) != 1 {
			t.Fatalf("%s: %d points, want 1", name, len(swept.Points))
		}
		got := swept.Points[0].Results
		if !reflect.DeepEqual(got.Monthly, plain.Monthly) {
			t.Fatalf("%s: nominal sweep monthly series differ from plain assessment", name)
		}
		if !reflect.DeepEqual(got.Table, plain.Table) {
			t.Fatalf("%s: nominal sweep Table I differs from plain assessment", name)
		}
		for d := range plain.References {
			if !plain.References[d].Equal(got.References[d]) {
				t.Fatalf("%s: device %d reference differs", name, d)
			}
		}
	}
	if !reflect.DeepEqual(one.Comparison, many.Comparison) {
		t.Fatal("worker bound changed the sweep comparison")
	}
}

// TestRunSweepCancellationMidSweep cancels from the sweep progress
// callback with a 4-point temperature grid in flight: RunSweep must
// return promptly with context.Canceled and leak no goroutines.
func TestRunSweepCancellationMidSweep(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	a, err := NewAssessment(
		WithDevices(2),
		WithMonths(12),
		WithWindowSize(40),
		WithConditionGrid(sweepTemps, []float64{5.0}),
		WithSweepProgress(func(p SweepProgress) {
			if p.Eval.Month >= 1 {
				once.Do(cancel)
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := a.RunSweep(ctx)
	if res != nil {
		t.Fatal("cancelled sweep returned results")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancelled sweep took %v", elapsed)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

// TestRunSweepPreCancelled: a context cancelled before RunSweep starts
// must abort before any point measures anything.
func TestRunSweepPreCancelled(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	progressed := false
	a, err := NewAssessment(smallOpts(
		WithConditionGrid(sweepTemps, []float64{5.0}),
		WithSweepProgress(func(SweepProgress) { progressed = true }),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.RunSweep(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if progressed {
		t.Fatal("pre-cancelled sweep evaluated a month")
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

// TestSweepTypedErrors exercises the ErrConfig path of the sweep facade:
// invalid conditions fail at option time, mismatched option combinations
// fail at build time, and configuration failures inside RunSweep stay
// retryable while a completed sweep does not.
func TestSweepTypedErrors(t *testing.T) {
	// Invalid conditions fail fast at NewAssessment, before any side
	// effect — the typed ErrConfig path through the sweep facade.
	for _, sc := range []Scenario{
		{Name: "frozen", TempC: -300, Voltage: 5},
		{Name: "unpowered", TempC: 25, Voltage: 0},
		{Name: "negative-volt", TempC: 25, Voltage: -5},
	} {
		if _, err := NewAssessment(smallOpts(WithConditions(sc))...); !errors.Is(err, ErrConfig) {
			t.Fatalf("scenario %q: err = %v, want ErrConfig", sc.Name, err)
		}
	}
	if _, err := NewAssessment(WithConditions()); !errors.Is(err, ErrConfig) {
		t.Fatalf("no scenarios: err = %v, want ErrConfig", err)
	}
	if _, err := NewAssessment(WithConditionGrid(nil, []float64{5})); !errors.Is(err, ErrConfig) {
		t.Fatalf("empty grid axis: err = %v, want ErrConfig", err)
	}

	// Conditions are exclusive with an explicit source.
	src, err := NewSimulatedSource(mustProfile(t), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAssessment(WithSource(src), WithConditions(NominalRoomTemp)); !errors.Is(err, ErrConfig) {
		t.Fatalf("source + conditions: err = %v, want ErrConfig", err)
	}

	// A conditioned assessment runs through RunSweep, not Run; an
	// unconditioned one has no sweep to run.
	conditioned, err := NewAssessment(smallOpts(WithConditions(NominalRoomTemp))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conditioned.Run(context.Background()); !errors.Is(err, ErrConfig) {
		t.Fatalf("Run with conditions: err = %v, want ErrConfig", err)
	}
	plain, err := NewAssessment(smallOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.RunSweep(context.Background()); !errors.Is(err, ErrConfig) {
		t.Fatalf("RunSweep without conditions: err = %v, want ErrConfig", err)
	}

	// A configuration failure the per-point engines would report
	// (duplicate metric names) is caught pre-flight and stays retryable.
	dup := NewMetric("dup", func(month, device int, ref *Pattern) (MetricAccumulator, error) {
		return addFunc(func(*Pattern) error { return nil }), nil
	})
	dupA, err := NewAssessment(smallOpts(WithConditions(NominalRoomTemp), WithMetrics(dup, dup))...)
	if err != nil {
		t.Fatal(err)
	}
	for try := 0; try < 2; try++ {
		if _, err := dupA.RunSweep(context.Background()); !errors.Is(err, ErrConfig) {
			t.Fatalf("duplicate metric try %d: err = %v, want ErrConfig", try, err)
		}
	}

	// A configuration failure inside RunSweep (odd rig device count) is
	// caught pre-flight and stays retryable; a completed sweep does not.
	oddRig, err := NewAssessment(
		WithHarness(),
		WithDevices(3),
		WithMonths(1),
		WithWindowSize(10),
		WithConditions(HotCorner),
	)
	if err != nil {
		t.Fatal(err)
	}
	for try := 0; try < 2; try++ {
		if _, err := oddRig.RunSweep(context.Background()); !errors.Is(err, ErrConfig) {
			t.Fatalf("odd rig try %d: err = %v, want ErrConfig", try, err)
		}
	}
	done, err := NewAssessment(smallOpts(WithConditions(NominalRoomTemp, HotCorner))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := done.RunSweep(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := done.RunSweep(context.Background()); !errors.Is(err, ErrAlreadyRun) {
		t.Fatalf("second sweep: err = %v, want ErrAlreadyRun", err)
	}
}

// TestSweepComparisonShape: a facade-level grid sweep carries the
// cross-condition series with the worst corner resolved per month and a
// populated temperature-slope map.
func TestSweepComparisonShape(t *testing.T) {
	a, err := NewAssessment(
		WithDevices(2),
		WithMonths(2),
		WithWindowSize(30),
		WithConditionGrid(sweepTemps, []float64{5.0}),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.RunSweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(sweepTemps) {
		t.Fatalf("%d points, want %d", len(res.Points), len(sweepTemps))
	}
	c := res.Comparison
	if len(c.Months) != 3 || len(c.WorstWCHD) != 3 || len(c.StableIntersect) != 3 {
		t.Fatalf("comparison series have lengths %d/%d/%d, want 3", len(c.Months), len(c.WorstWCHD), len(c.StableIntersect))
	}
	if c.TempSlope == nil {
		t.Fatal("temperature sweep produced no sensitivity slopes")
	}
	if out := RenderCornerTable(c); len(out) == 0 {
		t.Fatal("empty corner table")
	}
}
