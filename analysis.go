package sramaging

import (
	"io"

	"repro/internal/bitvec"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/sp80022"
	"repro/internal/sp80090b"
	"repro/internal/stats"
)

// Rand is the repository's deterministic splittable RNG; key-generation
// enrollment takes one as its randomness source.
type Rand = rng.Source

// NewRand returns a deterministic RNG. The same seed always reproduces
// the same stream.
func NewRand(seed uint64) *Rand { return rng.New(seed) }

// RenderLinePlot renders an ASCII line plot (one glyph per series) — the
// Fig. 6 presentation used by the CLIs and examples.
func RenderLinePlot(title string, series [][]float64, labels []string, height int) (string, error) {
	return report.LinePlot(title, series, labels, height)
}

// MonthlyChange returns the geometric per-month rate of change between a
// start and end value months apart — the paper's %/month figures.
func MonthlyChange(start, end float64, months int) float64 {
	return stats.MonthlyChange(start, end, months)
}

// WriteSeriesCSV writes labelled series as CSV, one row per x label — the
// Fig. 6 export format of cmd/agingtest.
func WriteSeriesCSV(w io.Writer, xHeader string, xs []string, headers []string, series [][]float64) error {
	return report.WriteSeriesCSV(w, xHeader, xs, headers, series)
}

// EntropyAssessment carries the six SP 800-90B min-entropy estimates of a
// sample (bits per bit) and their minimum.
type EntropyAssessment = sp80090b.Assessment

// AssessMinEntropy runs the SP 800-90B non-IID estimator track over a
// byte sample (assessed bit by bit).
func AssessMinEntropy(sample []byte) (EntropyAssessment, error) {
	return sp80090b.Assess(sp80090b.BytesToBits(sample))
}

// RandomnessTest is one SP 800-22 battery result.
type RandomnessTest = sp80022.Result

// RandomnessAlpha is the battery's significance level.
const RandomnessAlpha = sp80022.Alpha

// RandomnessBattery runs the SP 800-22 randomness battery over a byte
// sample.
func RandomnessBattery(sample []byte) ([]RandomnessTest, error) {
	v, err := bitvec.FromBytes(sample, len(sample)*8)
	if err != nil {
		return nil, err
	}
	return sp80022.Battery(v)
}

// RandomnessPassCount tallies a battery outcome.
func RandomnessPassCount(results []RandomnessTest) (passed, total int) {
	return sp80022.PassCount(results)
}
