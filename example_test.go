package sramaging_test

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"

	sramaging "repro"
)

// ExampleNewChip demonstrates the basic measurement flow: instantiate a
// calibrated chip and read its power-up pattern, as the paper's rig does
// ~11 million times per board.
func ExampleNewChip() {
	profile, err := sramaging.ATmega32u4()
	if err != nil {
		log.Fatal(err)
	}
	chip, err := sramaging.NewChip(profile, 1)
	if err != nil {
		log.Fatal(err)
	}
	w, err := chip.PowerUpWindow()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("read window bits:", w.Len())
	fmt.Println("cells on chip:", chip.Cells())
	// Output:
	// read window bits: 8192
	// cells on chip: 20480
}

// ExampleNewAssessment runs a miniature campaign on the composable API:
// functional options, incremental per-month emission through
// WithProgress, and a cancellable Run.
func ExampleNewAssessment() {
	a, err := sramaging.NewAssessment(
		sramaging.WithDevices(2),
		sramaging.WithMonths(3),
		sramaging.WithWindowSize(60),
		sramaging.WithProgress(func(ev sramaging.MonthEval) {
			fmt.Println("evaluated", ev.Label)
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := a.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	if res.Table.WCHD.Avg.End > res.Table.WCHD.Avg.Start {
		fmt.Println("reliability degrades with aging: WCHD increased")
	}
	// Output:
	// evaluated 17-Feb
	// evaluated 17-Mar
	// evaluated 17-Apr
	// evaluated 17-May
	// reliability degrades with aging: WCHD increased
}

// ExampleAssessment_RunSweep screens the same chips across operating
// corners: one full assessment per condition over a temperature grid,
// with the cross-condition comparison answering what a corner-aware
// deployment needs — the worst corner's reliability and the cells stable
// at every corner.
func ExampleAssessment_RunSweep() {
	a, err := sramaging.NewAssessment(
		sramaging.WithDevices(2),
		sramaging.WithMonths(2),
		sramaging.WithWindowSize(40),
		sramaging.WithConditions(
			sramaging.NominalRoomTemp,
			sramaging.HotCorner,
		),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := a.RunSweep(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	c := res.Comparison
	end := len(c.Months) - 1
	fmt.Println("corners swept:", len(res.Points))
	fmt.Println("worst corner at end of test:", c.WorstWCHDCorner[end])
	if c.StableIntersect[end] < res.Points[0].Results.Monthly[end].Avg(
		func(d sramaging.DeviceMonth) float64 { return d.StableRatio }) {
		fmt.Println("fewer cells are stable across all corners than at nominal alone")
	}
	// Output:
	// corners swept: 2
	// worst corner at end of test: hot-corner
	// fewer cells are stable across all corners than at nominal alone
}

// ExampleAssessment_shards fans the same campaign across shard workers:
// the device population is partitioned, each shard measures its slice
// (in-process here; subprocesses with ExecShardTransport and the
// cmd/shardworker binary), and the merged Results are bit-identical to
// the single-process run — sharding changes where the work happens, not
// a single bit of the outcome.
func ExampleAssessment_shards() {
	run := func(opts ...sramaging.Option) *sramaging.Results {
		a, err := sramaging.NewAssessment(append([]sramaging.Option{
			sramaging.WithDevices(4),
			sramaging.WithMonths(2),
			sramaging.WithWindowSize(40),
		}, opts...)...)
		if err != nil {
			log.Fatal(err)
		}
		res, err := a.Run(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	single := run()
	sharded := run(sramaging.WithShards(2))
	if reflect.DeepEqual(single.Monthly, sharded.Monthly) {
		fmt.Println("2-shard campaign is bit-identical to the single-process run")
	}
	// Output:
	// 2-shard campaign is bit-identical to the single-process run
}

// ExampleAssessment_binaryArchive collects a campaign into a BINARY
// archive through the rig's record tap, then replays it: the binary
// codec (fixed header + raw pattern words, detected by its leading
// magic) carries exactly the records the JSONL schema carries, at
// roughly half the bytes — so the replayed assessment is bit-identical
// to the live one. Use a `.bin` path with agingtest -archive for the
// same flow on the command line; keep JSONL when the archive is meant
// for human eyes (grep, jq).
func ExampleAssessment_binaryArchive() {
	profile, err := sramaging.ATmega32u4()
	if err != nil {
		log.Fatal(err)
	}
	rig, err := sramaging.NewRigSource(profile, 2, 7, 0)
	if err != nil {
		log.Fatal(err)
	}
	var archive bytes.Buffer
	bw := sramaging.NewBinaryRecordWriter(&archive)
	rig.SetTap(bw.Write)

	run := func(src sramaging.Source) *sramaging.Results {
		a, err := sramaging.NewAssessment(
			sramaging.WithSource(src),
			sramaging.WithMonths(2),
			sramaging.WithWindowSize(40),
		)
		if err != nil {
			log.Fatal(err)
		}
		res, err := a.Run(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	live := run(rig)
	if err := bw.Flush(); err != nil {
		log.Fatal(err)
	}

	replaySrc, err := sramaging.NewArchiveSource(&archive)
	if err != nil {
		log.Fatal(err)
	}
	replay := run(replaySrc)
	if reflect.DeepEqual(live.Monthly, replay.Monthly) {
		fmt.Println("binary-archive replay is bit-identical to the live campaign")
	}
	// Output:
	// binary-archive replay is bit-identical to the live campaign
}

// ExampleAssessment_indexedArchive collects a campaign into an INDEXED
// binary archive file (a `.bin` path selects the v2 codec, whose Flush
// appends a trailer index mapping every board/month segment), inspects
// it without reading the records, and replays it with OpenArchiveSource:
// month windows stream straight from disk through O(1) index seeks —
// the archive is never materialised in memory — and the replayed
// assessment is bit-identical to the live one. UpgradeArchive is a
// no-op here because collection already indexed the file; point it at a
// v1 or JSONL archive to rewrite it in place into this format.
func ExampleAssessment_indexedArchive() {
	profile, err := sramaging.ATmega32u4()
	if err != nil {
		log.Fatal(err)
	}
	rig, err := sramaging.NewRigSource(profile, 2, 7, 0)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "indexed-archive")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "campaign.bin")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	bw := sramaging.NewRecordWriterForPath(path, f)
	rig.SetTap(bw.Write)

	run := func(src sramaging.Source) *sramaging.Results {
		a, err := sramaging.NewAssessment(
			sramaging.WithSource(src),
			sramaging.WithMonths(2),
			sramaging.WithWindowSize(40),
		)
		if err != nil {
			log.Fatal(err)
		}
		res, err := a.Run(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	live := run(rig)
	if err := bw.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	info, err := sramaging.InspectArchive(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("archive: %s, indexed: %v\n", info.Format, info.Indexed)
	upgraded, err := sramaging.UpgradeArchive(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rewrite needed to index:", upgraded)

	src, err := sramaging.OpenArchiveSource(path)
	if err != nil {
		log.Fatal(err)
	}
	defer src.Close()
	replay := run(src)
	if reflect.DeepEqual(live.Monthly, replay.Monthly) {
		fmt.Println("seek-based replay is bit-identical to the live campaign")
	}
	// Output:
	// archive: binary-v2, indexed: true
	// rewrite needed to index: false
	// seek-based replay is bit-identical to the live campaign
}

// ExampleRunCampaign runs a miniature assessment campaign through the
// deprecated Config shim and reports the direction of the reliability
// trend, the paper's §IV-D1 observation.
func ExampleRunCampaign() {
	cfg, err := sramaging.DefaultCampaign()
	if err != nil {
		log.Fatal(err)
	}
	cfg.Devices = 2
	cfg.Months = 3
	cfg.WindowSize = 60
	res, err := sramaging.RunCampaign(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if res.Table.WCHD.Avg.End > res.Table.WCHD.Avg.Start {
		fmt.Println("reliability degrades with aging: WCHD increased")
	}
	if res.Table.NoiseEntropy.Avg.End > res.Table.NoiseEntropy.Avg.Start {
		fmt.Println("randomness improves with aging: noise entropy increased")
	}
	// Output:
	// reliability degrades with aging: WCHD increased
	// randomness improves with aging: noise entropy increased
}

// ExamplePredictedWCHDTrajectory reproduces the paper's §V conclusion
// numerically: nominal-condition aging degrades reliability much more
// slowly than an accelerated test would suggest.
func ExamplePredictedWCHDTrajectory() {
	nominal, err := sramaging.ATmega32u4()
	if err != nil {
		log.Fatal(err)
	}
	traj, err := sramaging.PredictedWCHDTrajectory(nominal, 24)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("WCHD month 0:  %.2f%%\n", 100*traj[0])
	fmt.Printf("WCHD month 24: %.2f%%\n", 100*traj[24])
	// Output:
	// WCHD month 0:  2.49%
	// WCHD month 24: 2.97%
}

// ExampleAssessment_service runs a campaign through the long-lived
// assessment service: an in-process assessd manager behind its HTTP API,
// a spec submitted with the typed client, months streamed as they
// finalise, and the assembled results — identical to running the same
// campaign locally, but submitted, streamed and checkpointed by a
// service that survives restarts.
func ExampleAssessment_service() {
	dir, err := os.MkdirTemp("", "assessd-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	mgr, err := sramaging.NewServeManager(sramaging.ServeConfig{DataDir: dir, Workers: 2, MaxActive: 2})
	if err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(sramaging.ServeHandler(mgr))
	defer srv.Close()

	client := &sramaging.ServeClient{Base: srv.URL}
	ctx := context.Background()
	id, res, err := client.Run(ctx,
		sramaging.ServeSpec{Devices: 2, Months: 3, Window: 60},
		func(ev sramaging.MonthEval) { fmt.Println("streamed", ev.Label) },
	)
	if err != nil {
		log.Fatal(err)
	}
	st, err := client.Status(ctx, id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("campaign", st.Status, "after", len(res.Monthly), "months")
	if res.Table.WCHD.Avg.End > res.Table.WCHD.Avg.Start {
		fmt.Println("reliability degrades with aging: WCHD increased")
	}
	if err := mgr.Close(ctx); err != nil {
		log.Fatal(err)
	}
	// Output:
	// streamed 17-Feb
	// streamed 17-Mar
	// streamed 17-Apr
	// streamed 17-May
	// campaign done after 4 months
	// reliability degrades with aging: WCHD increased
}
