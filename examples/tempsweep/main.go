// Example tempsweep screens an SRAM PUF design across operating corners
// before deployment: the same chips (same profile, same seed) are swept
// over a temperature grid, and the cross-condition comparison answers the
// two questions a key-storage design must settle up front — how bad does
// reliability get at the worst corner, and how many cells stay stable at
// EVERY corner (the enrollment budget of a stable-cell scheme).
package main

import (
	"context"
	"fmt"
	"log"

	sramaging "repro"
)

func main() {
	a, err := sramaging.NewAssessment(
		sramaging.WithDevices(2),
		sramaging.WithMonths(3),
		sramaging.WithWindowSize(60),
		// Cold corner, the paper's room-temperature test, hot corner.
		sramaging.WithConditions(
			sramaging.ColdCorner,
			sramaging.NominalRoomTemp,
			sramaging.HotCorner,
		),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := a.RunSweep(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	for _, pt := range res.Points {
		last := pt.Results.Monthly[len(pt.Results.Monthly)-1]
		fmt.Printf("%-18s end-of-test WCHD %.2f%%, stable cells %.2f%%\n",
			pt.Scenario.Name,
			100*last.Avg(func(d sramaging.DeviceMonth) float64 { return d.WCHD }),
			100*last.Avg(func(d sramaging.DeviceMonth) float64 { return d.StableRatio }))
	}

	c := res.Comparison
	end := len(c.Months) - 1
	fmt.Printf("\nworst corner at end of test: %s (WCHD %.2f%%)\n",
		c.WorstWCHDCorner[end], 100*c.WorstWCHD[end])
	fmt.Printf("cells stable at every corner: %.2f%%\n", 100*c.StableIntersect[end])
	fmt.Printf("WCHD temperature sensitivity: %+.4f%%/degC\n",
		100*c.TempSlope[sramaging.SlopeWCHD])
}
