// Custommetric: extending the assessment with an externally defined
// Metric — no engine surgery, just an implementation of the public Metric
// interface registered through WithMetrics.
//
// The metric computed here is the flip-wise stable-cell ratio: a per-cell
// "ever changed value" bitmap maintained with one XOR pass per
// measurement. A cell is stable over a window exactly when it never
// flips, which is the same thing as its one-count being 0 or n — so this
// independent implementation must agree bit-for-bit with the engine's
// built-in count-based StableRatio. The example asserts that it does, on
// every device and month, while the campaign streams.
package main

import (
	"context"
	"fmt"
	"log"

	sramaging "repro"
)

// flipStability implements sramaging.Metric.
type flipStability struct{}

func (flipStability) Name() string { return "stable_flipwise" }

func (flipStability) NewAccumulator(month, device int, ref *sramaging.Pattern) (sramaging.MetricAccumulator, error) {
	return &flipAcc{}, nil
}

// flipAcc tracks which cells ever changed value across one device-window.
type flipAcc struct {
	prev    *sramaging.Pattern
	changed *sramaging.Pattern
}

func (a *flipAcc) Add(m *sramaging.Pattern) error {
	if a.prev == nil {
		// Measurements may share storage between deliveries: clone.
		a.prev = m.Clone()
		a.changed = sramaging.NewPattern(m.Len())
		return nil
	}
	// changed |= m XOR prev, in place — no per-measurement allocation.
	if err := a.changed.OrDiffInPlace(m, a.prev); err != nil {
		return err
	}
	return a.prev.CopyFrom(m)
}

func (a *flipAcc) Value() (float64, error) {
	if a.changed == nil {
		return 0, fmt.Errorf("custommetric: empty window")
	}
	n := a.changed.Len()
	return float64(n-a.changed.HammingWeight()) / float64(n), nil
}

func main() {
	const devices, months, window = 4, 6, 150
	a, err := sramaging.NewAssessment(
		sramaging.WithDevices(devices),
		sramaging.WithMonths(months),
		sramaging.WithWindowSize(window),
		sramaging.WithMetrics(flipStability{}),
		sramaging.WithProgress(func(ev sramaging.MonthEval) {
			for d := range ev.Devices {
				builtin := ev.Devices[d].StableRatio
				custom := ev.Custom["stable_flipwise"][d]
				if builtin != custom {
					log.Fatalf("%s device %d: built-in stable ratio %v != flip-wise %v",
						ev.Label, d, builtin, custom)
				}
			}
			fmt.Printf("%s: stable cells %.2f%% (flip-wise metric agrees on all %d devices)\n",
				ev.Label,
				100*ev.Avg(func(d sramaging.DeviceMonth) float64 { return d.StableRatio }),
				len(ev.Devices))
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := a.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	series := res.CustomSeries("stable_flipwise")
	fmt.Printf("\ncustom metric series: %d devices × %d evaluations\n", len(series), len(series[0]))
	fmt.Println("-> the two independent stable-cell definitions (one-count in {0, n} vs never-flips)")
	fmt.Println("   agree exactly — the count-based comparison has no float rounding to diverge on.")
}
