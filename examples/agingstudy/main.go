// Agingstudy: a reduced end-to-end replica of the paper's evaluation —
// a multi-device campaign with monthly windows streamed incrementally
// through WithProgress, the Table I summary, the Fig. 6a reliability
// trend, and the nominal-vs-accelerated comparison that is the paper's
// headline conclusion (§V).
package main

import (
	"context"
	"fmt"
	"log"

	sramaging "repro"
)

func main() {
	// Reduced scale so the example runs in seconds; scale the three
	// numbers up to (16, 24, 1000) for the paper's full campaign.
	const devices, months, window = 6, 12, 300

	fmt.Printf("campaign: %d devices, %d months, %d-measurement monthly windows\n\n",
		devices, months, window)
	a, err := sramaging.NewAssessment(
		sramaging.WithDevices(devices),
		sramaging.WithMonths(months),
		sramaging.WithWindowSize(window),
		// Per-month results stream in as each window finalises — a long
		// campaign reports progress instead of going dark until the end.
		sramaging.WithProgress(func(ev sramaging.MonthEval) {
			fmt.Printf("  %s: WCHD %.3f%%\n", ev.Label,
				100*ev.Avg(func(d sramaging.DeviceMonth) float64 { return d.WCHD }))
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := a.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(sramaging.RenderTableI(res.Table))

	plot, err := sramaging.RenderLinePlot("\nWCHD development (one line per device)",
		res.Series(func(d sramaging.DeviceMonth) float64 { return d.WCHD }), res.MonthLabels(), 12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plot)

	// Nominal vs accelerated comparison (model trajectories).
	nominal, err := sramaging.ATmega32u4()
	if err != nil {
		log.Fatal(err)
	}
	accel, err := sramaging.CMOS65nmAccelerated()
	if err != nil {
		log.Fatal(err)
	}
	tn, err := sramaging.PredictedWCHDTrajectory(nominal, 24)
	if err != nil {
		log.Fatal(err)
	}
	ta, err := sramaging.PredictedWCHDTrajectory(accel, 24)
	if err != nil {
		log.Fatal(err)
	}
	rn := sramaging.MonthlyChange(tn[0], tn[24], 24)
	ra := sramaging.MonthlyChange(ta[0], ta[24], 24)
	fmt.Printf("WCHD monthly growth: nominal %+.2f%%/mo vs accelerated %+.2f%%/mo\n", 100*rn, 100*ra)
	fmt.Printf("paper:               nominal +0.74%%/mo vs accelerated +1.28%%/mo\n")
	fmt.Println("-> accelerated aging overestimates reliability degradation, the paper's central claim.")
}
