// Agingstudy: a reduced end-to-end replica of the paper's evaluation —
// a multi-device campaign with monthly windows, the Table I summary, the
// Fig. 6a reliability trend, and the nominal-vs-accelerated comparison
// that is the paper's headline conclusion (§V).
package main

import (
	"fmt"
	"log"

	sramaging "repro"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/stats"
)

func main() {
	cfg, err := sramaging.DefaultCampaign()
	if err != nil {
		log.Fatal(err)
	}
	// Reduced scale so the example runs in seconds; scale the three
	// numbers up to (16, 24, 1000) for the paper's full campaign.
	cfg.Devices = 6
	cfg.Months = 12
	cfg.WindowSize = 300

	fmt.Printf("campaign: %d devices, %d months, %d-measurement monthly windows\n\n",
		cfg.Devices, cfg.Months, cfg.WindowSize)
	res, err := sramaging.RunCampaign(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sramaging.RenderTableI(res.Table))

	plot, err := report.LinePlot("\nWCHD development (one line per device)",
		res.Series(func(d core.DeviceMonth) float64 { return d.WCHD }), res.MonthLabels(), 12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plot)

	// Nominal vs accelerated comparison (model trajectories).
	nominal, err := sramaging.ATmega32u4()
	if err != nil {
		log.Fatal(err)
	}
	accel, err := sramaging.CMOS65nmAccelerated()
	if err != nil {
		log.Fatal(err)
	}
	tn, err := sramaging.PredictedWCHDTrajectory(nominal, 24)
	if err != nil {
		log.Fatal(err)
	}
	ta, err := sramaging.PredictedWCHDTrajectory(accel, 24)
	if err != nil {
		log.Fatal(err)
	}
	rn := stats.MonthlyChange(tn[0], tn[24], 24)
	ra := stats.MonthlyChange(ta[0], ta[24], 24)
	fmt.Printf("WCHD monthly growth: nominal %+.2f%%/mo vs accelerated %+.2f%%/mo\n", 100*rn, 100*ra)
	fmt.Printf("paper:               nominal +0.74%%/mo vs accelerated +1.28%%/mo\n")
	fmt.Println("-> accelerated aging overestimates reliability degradation, the paper's central claim.")
}
