// Mixedfleet: a heterogeneous campaign over two device families at once —
// the paper's ATmega32u4 embedded SRAM next to a cache-line-structured
// large-array profile — through the Fleet API. Every device is assigned
// one of the fleet's profiles deterministically from the campaign seed,
// and each month's MonthEval carries the per-profile breakdown, so the
// two families' reliability trends separate cleanly inside one run.
//
// The example also registers a custom profile (a mildly noisy variant
// built with NewDeviceProfile) to show that registration makes a family
// a first-class citizen: resolvable by name, admissible in fleets, and
// usable from the CLIs' -profile flag.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	sramaging "repro"
)

func main() {
	const devices, months, window = 8, 6, 150

	// A custom family: the calibrated nominal device, but cache-line
	// structured with correlated within-line mismatch — registered so it
	// is resolvable by name everywhere profiles are named.
	sramaging.RegisterProfile("demo-cacheline", func() (sramaging.DeviceProfile, error) {
		return sramaging.NewDeviceProfile("demo-cacheline",
			sramaging.WithGeometry(16384, 1024),
			sramaging.WithCellModel(sramaging.ModelCorrelated),
			sramaging.WithLineStructure(512, 0.3),
		)
	})

	embedded, err := sramaging.ProfileByName("atmega32u4")
	if err != nil {
		log.Fatal(err)
	}
	cacheline, err := sramaging.ProfileByName("demo-cacheline")
	if err != nil {
		log.Fatal(err)
	}
	fleet, err := sramaging.NewFleet(embedded, cacheline)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mixed fleet: %d devices over %d profiles, %d months, %d-measurement windows\n\n",
		devices, fleet.Size(), months, window)

	a, err := sramaging.NewAssessment(
		sramaging.WithFleet(fleet),
		sramaging.WithDevices(devices),
		sramaging.WithMonths(months),
		sramaging.WithWindowSize(window),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := a.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	// The per-profile breakdown: each family's average reliability
	// metrics, every month, from the one heterogeneous run.
	fmt.Println("per-profile monthly breakdown:")
	for _, ev := range res.Monthly {
		fmt.Printf("  %s:\n", ev.Label)
		names := make([]string, 0, len(ev.ByProfile))
		for name := range ev.ByProfile {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			pe := ev.ByProfile[name]
			fmt.Printf("    %-16s %d devices  WCHD %.3f%%  HW %.2f%%  stable %.2f%%\n",
				name, pe.Devices, 100*pe.WCHD, 100*pe.FHW, 100*pe.StableRatio)
		}
	}

	fmt.Println()
	fmt.Print(sramaging.RenderTableI(res.Table))
}
