// Mixedfleet: a heterogeneous campaign over two device families at once —
// the paper's ATmega32u4 embedded SRAM next to a cache-line-structured
// large-array profile — through the Fleet API. Every device is assigned
// one of the fleet's profiles deterministically from the campaign seed,
// and each month's MonthEval carries the per-profile breakdown, so the
// two families' reliability trends separate cleanly inside one run.
//
// The example also registers a custom profile (a mildly noisy variant
// built with NewDeviceProfile) to show that registration makes a family
// a first-class citizen: resolvable by name, admissible in fleets, and
// usable from the CLIs' -profile flag.
//
// A second, screened campaign then runs the same fleet with lazy chip
// construction (WithLazy — O(workers) resident arrays, the
// million-device mode) and a stability floor (WithScreening) that
// prunes weak devices between months, printing the survivor count and
// per-profile attrition series.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"strings"

	sramaging "repro"
)

func main() {
	const devices, months, window = 8, 6, 150
	const screenFloor = 0.87

	// A custom family: the calibrated nominal device, but cache-line
	// structured with correlated within-line mismatch — registered so it
	// is resolvable by name everywhere profiles are named.
	sramaging.RegisterProfile("demo-cacheline", func() (sramaging.DeviceProfile, error) {
		return sramaging.NewDeviceProfile("demo-cacheline",
			sramaging.WithGeometry(16384, 1024),
			sramaging.WithCellModel(sramaging.ModelCorrelated),
			sramaging.WithLineStructure(512, 0.3),
		)
	})

	embedded, err := sramaging.ProfileByName("atmega32u4")
	if err != nil {
		log.Fatal(err)
	}
	cacheline, err := sramaging.ProfileByName("demo-cacheline")
	if err != nil {
		log.Fatal(err)
	}
	fleet, err := sramaging.NewFleet(embedded, cacheline)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mixed fleet: %d devices over %d profiles, %d months, %d-measurement windows\n\n",
		devices, fleet.Size(), months, window)

	a, err := sramaging.NewAssessment(
		sramaging.WithFleet(fleet),
		sramaging.WithDevices(devices),
		sramaging.WithMonths(months),
		sramaging.WithWindowSize(window),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := a.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	// The per-profile breakdown: each family's average reliability
	// metrics, every month, from the one heterogeneous run.
	fmt.Println("per-profile monthly breakdown:")
	for _, ev := range res.Monthly {
		fmt.Printf("  %s:\n", ev.Label)
		names := make([]string, 0, len(ev.ByProfile))
		for name := range ev.ByProfile {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			pe := ev.ByProfile[name]
			fmt.Printf("    %-16s %d devices  WCHD %.3f%%  HW %.2f%%  stable %.2f%%\n",
				name, pe.Devices, 100*pe.WCHD, 100*pe.FHW, 100*pe.StableRatio)
		}
	}

	fmt.Println()
	fmt.Print(sramaging.RenderTableI(res.Table))

	// The screening variant: the same fleet at population scale. WithLazy
	// derives each chip on demand from (seed, device index) inside a
	// worker slot — resident memory is O(workers × array), so the same
	// code runs a million-device fleet — and WithScreening prunes devices
	// whose stable-cell ratio falls below the floor between months, the
	// design-phase corner-screening workflow. Results are bit-identical
	// to the eager source for any execution shape.
	const screenDevices = 24
	fmt.Println()
	fmt.Printf("screened campaign: %d devices, lazy construction, stability floor %.2f\n",
		screenDevices, screenFloor)
	sa, err := sramaging.NewAssessment(
		sramaging.WithFleet(fleet),
		sramaging.WithDevices(screenDevices),
		sramaging.WithMonths(months),
		sramaging.WithWindowSize(window),
		sramaging.WithLazy(),
		sramaging.WithScreening(screenFloor),
	)
	if err != nil {
		log.Fatal(err)
	}
	sres, err := sa.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	for _, ev := range sres.Monthly {
		fmt.Printf("  %-8s %2d of %d devices surviving", ev.Label, ev.Survivors, screenDevices)
		if len(ev.Pruned) > 0 {
			names := make([]string, 0, len(ev.Attrition))
			for name := range ev.Attrition {
				names = append(names, name)
			}
			sort.Strings(names)
			parts := make([]string, 0, len(names))
			for _, name := range names {
				parts = append(parts, fmt.Sprintf("%s: %d", name, ev.Attrition[name]))
			}
			fmt.Printf("  (pruned %s)", strings.Join(parts, ", "))
		}
		fmt.Println()
	}
}
