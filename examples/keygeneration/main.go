// Keygeneration: the paper's §II-A1 application as a streamed campaign.
// WithKeyLifecycle turns the assessment into a key-provisioning
// pipeline: the first evaluated month runs burn-in screening at the hot
// corners, index-selection debiasing over the stable cells, and
// fuzzy-extractor enrollment per device; every later month reconstructs
// the key from that month's first power-up and streams success, bit
// errors, remaining correction margin, and the model-predicted failure
// probability. Despite the WCHD growth from ~2.5% to ~3% over the
// two-year campaign, every device's key reconstructs every month — the
// demonstration the paper's §II-A1 makes.
package main

import (
	"context"
	"fmt"
	"log"

	sramaging "repro"
)

func main() {
	a, err := sramaging.NewAssessment(
		sramaging.WithDevices(4),
		sramaging.WithMonths(24),
		sramaging.WithWindowSize(100),
		sramaging.WithKeyLifecycle(sramaging.KeyLifeConfig{}),
		sramaging.WithProgress(func(ev sramaging.MonthEval) {
			ok := 0
			for _, s := range ev.Custom[sramaging.KeyLifeSuccess] {
				if s == 1 {
					ok++
				}
			}
			fmt.Printf("month %2d (%s): WCHD %.2f%%, %d/%d keys reconstructed, worst margin %.0f\n",
				ev.Month, ev.Label,
				100*ev.Avg(func(d sramaging.DeviceMonth) float64 { return d.WCHD }),
				ok, len(ev.Custom[sramaging.KeyLifeSuccess]),
				ev.CrossCustom[sramaging.KeyLifeWorstMargin])
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := a.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Print(sramaging.RenderKeyLifeTable(res))

	// The headline claim: no device ever lost its key.
	for d, s := range res.CustomSeries(sramaging.KeyLifeSuccess) {
		for m, v := range s {
			if v != 1 {
				log.Fatalf("device %d failed key reconstruction at evaluation %d", d, m)
			}
		}
	}
	fmt.Println("\nevery key remained recoverable across the full two-year aging span.")
}
