// Keygeneration: the paper's §II-A1 application. A key is enrolled from a
// fresh chip's power-up pattern, then the chip is aged month by month
// across the full two-year campaign and the key is reconstructed from a
// single noisy power-up at every step — demonstrating that despite the
// WCHD growth from 2.49% to ~2.97%, the helper-data scheme keeps
// reconstructing the identical key with margin.
package main

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"log"

	sramaging "repro"
)

func main() {
	profile, err := sramaging.ATmega32u4()
	if err != nil {
		log.Fatal(err)
	}
	chip, err := sramaging.NewChip(profile, 2017)
	if err != nil {
		log.Fatal(err)
	}
	extractor, err := sramaging.NewKeyExtractor()
	if err != nil {
		log.Fatal(err)
	}
	n := extractor.ResponseBits()
	fmt.Printf("scheme: %s over %d response bits\n", extractor.Code().Name(), n)

	// Enrollment at month 0 (device leaves the factory).
	enrollPattern, err := chip.PowerUpWindow()
	if err != nil {
		log.Fatal(err)
	}
	key, helper, err := extractor.Enroll(enrollPattern.Slice(0, n), sramaging.NewRand(99))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enrolled key: %s...\n\n", hex.EncodeToString(key[:8]))

	// Reconstruction across the aging campaign.
	fmt.Println("month | BER vs enrollment | reconstructed")
	for _, month := range []float64{0, 3, 6, 9, 12, 15, 18, 21, 24} {
		if err := chip.AgeTo(month); err != nil {
			log.Fatal(err)
		}
		w, err := chip.PowerUpWindow()
		if err != nil {
			log.Fatal(err)
		}
		resp := w.Slice(0, n)
		ber, err := resp.FractionalHammingDistance(enrollPattern.Slice(0, n))
		if err != nil {
			log.Fatal(err)
		}
		got, err := extractor.Reconstruct(resp, helper)
		ok := err == nil && bytes.Equal(got, key)
		fmt.Printf("%5.0f | %16.2f%% | %v\n", month, 100*ber, ok)
		if !ok {
			log.Fatalf("month %.0f: key reconstruction failed: %v", month, err)
		}
	}
	fmt.Println("\nkey remained recoverable across the full two-year aging span.")
}
