// Randomness: the paper's §II-A2 application. The unstable SRAM cells
// supply ~3% noise min-entropy per power-up bit (Table I); a conditioned
// TRNG built on them must produce full-entropy output. This example runs
// a two-year assessment to read the noise entropy fresh and aged — the
// paper concludes the aged source is a slightly BETTER entropy source —
// then assesses the conditioned TRNG output with the NIST batteries, all
// through the public API.
package main

import (
	"context"
	"fmt"
	"io"
	"log"

	sramaging "repro"
)

func main() {
	// A sparse campaign: evaluate the entropy metrics at month 0 and
	// month 24 only (the silicon still ages through the months between).
	a, err := sramaging.NewAssessment(
		sramaging.WithDevices(2),
		sramaging.WithSeed(7),
		sramaging.WithMonthList([]int{0, 24}),
		sramaging.WithWindowSize(200),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := a.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	noise := func(ev sramaging.MonthEval) float64 {
		return ev.Avg(func(d sramaging.DeviceMonth) float64 { return d.NoiseHmin })
	}
	stable := func(ev sramaging.MonthEval) float64 {
		return ev.Avg(func(d sramaging.DeviceMonth) float64 { return d.StableRatio })
	}
	fresh, aged := res.Monthly[0], res.Monthly[1]
	fmt.Printf("fresh chips     : noise min-entropy %.3f%% per bit, stable cells %.1f%%\n",
		100*noise(fresh), 100*stable(fresh))
	fmt.Printf("after 24 months : noise min-entropy %.3f%% per bit, stable cells %.1f%%\n",
		100*noise(aged), 100*stable(aged))
	if noise(aged) > noise(fresh) {
		fmt.Println("-> aging improved the entropy source, as the paper reports (+19.3%)")
	}

	// Conditioned TRNG output assessment on an aged chip.
	profile, err := sramaging.ATmega32u4()
	if err != nil {
		log.Fatal(err)
	}
	chip, err := sramaging.NewChip(profile, 7)
	if err != nil {
		log.Fatal(err)
	}
	if err := chip.AgeTo(24); err != nil {
		log.Fatal(err)
	}
	gen, err := sramaging.NewTRNG(chip)
	if err != nil {
		log.Fatal(err)
	}
	sample := make([]byte, 8192)
	if _, err := io.ReadFull(gen, sample); err != nil {
		log.Fatal(err)
	}
	ea, err := sramaging.AssessMinEntropy(sample)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconditioned output SP 800-90B min-entropy: %.3f bits/bit (min over 6 estimators)\n", ea.Min)

	results, err := sramaging.RandomnessBattery(sample)
	if err != nil {
		log.Fatal(err)
	}
	passed, total := sramaging.RandomnessPassCount(results)
	fmt.Printf("SP 800-22 battery: %d/%d tests passed\n", passed, total)
	for _, r := range results {
		fmt.Printf("  %-28s p=%.4f\n", r.Name, r.PValue)
	}
}
