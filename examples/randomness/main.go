// Randomness: the paper's §II-A2 application. The unstable SRAM cells
// supply ~3% noise min-entropy per power-up bit (Table I); a conditioned
// TRNG built on them must produce full-entropy output. This example
// generates random bytes before and after two years of aging and verifies
// that the aged source is, as the paper concludes, a slightly BETTER
// entropy source.
package main

import (
	"fmt"
	"io"
	"log"

	sramaging "repro"
	"repro/internal/bitvec"
	"repro/internal/entropy"
	"repro/internal/sp80022"
	"repro/internal/sp80090b"
)

func main() {
	profile, err := sramaging.ATmega32u4()
	if err != nil {
		log.Fatal(err)
	}
	chip, err := sramaging.NewChip(profile, 7)
	if err != nil {
		log.Fatal(err)
	}

	measureNoise := func(label string) float64 {
		var window []*bitvec.Vector
		for i := 0; i < 200; i++ {
			w, err := chip.PowerUpWindow()
			if err != nil {
				log.Fatal(err)
			}
			window = append(window, w)
		}
		probs, err := entropy.OneProbabilities(window)
		if err != nil {
			log.Fatal(err)
		}
		h, err := entropy.NoiseMinEntropy(probs)
		if err != nil {
			log.Fatal(err)
		}
		stable, err := entropy.StableCellRatio(probs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: noise min-entropy %.3f%% per bit, stable cells %.1f%%\n", label, 100*h, 100*stable)
		return h
	}

	fresh := measureNoise("fresh chip      ")
	if err := chip.AgeTo(24); err != nil {
		log.Fatal(err)
	}
	aged := measureNoise("after 24 months ")
	if aged > fresh {
		fmt.Println("-> aging improved the entropy source, as the paper reports (+19.3%)")
	}

	// Conditioned TRNG output assessment.
	gen, err := sramaging.NewTRNG(chip)
	if err != nil {
		log.Fatal(err)
	}
	sample := make([]byte, 8192)
	if _, err := io.ReadFull(gen, sample); err != nil {
		log.Fatal(err)
	}
	a, err := sp80090b.Assess(sp80090b.BytesToBits(sample))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconditioned output SP 800-90B min-entropy: %.3f bits/bit (min over 6 estimators)\n", a.Min)

	v, err := bitvec.FromBytes(sample, len(sample)*8)
	if err != nil {
		log.Fatal(err)
	}
	results, err := sp80022.Battery(v)
	if err != nil {
		log.Fatal(err)
	}
	passed, total := sp80022.PassCount(results)
	fmt.Printf("SP 800-22 battery: %d/%d tests passed\n", passed, total)
	for _, r := range results {
		fmt.Printf("  %-28s p=%.4f\n", r.Name, r.PValue)
	}
}
