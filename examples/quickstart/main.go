// Quickstart: simulate one ATmega32u4 SRAM chip, read its power-up
// pattern like the paper's rig does, then run a two-device, two-window
// micro-assessment through the public Source/Assessment API to get the
// §IV quality metrics (reliability, bias, uniqueness).
package main

import (
	"context"
	"fmt"
	"log"

	sramaging "repro"
)

func main() {
	profile, err := sramaging.ATmega32u4()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device: %s (%d B SRAM, %d B read window, %.1f V)\n",
		profile.Name, profile.SRAMBytes, profile.ReadWindowBytes, profile.OperatingVoltage)

	// Chip-level view: the raw power-up pattern the metrics are built on.
	chip, err := sramaging.NewChip(profile, 42)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := chip.PowerUpWindow()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one power-up pattern: %d bits, FHW %.2f%%\n\n", ref.Len(), 100*ref.FractionalHammingWeight())

	// Campaign-level view: the same metrics over proper evaluation
	// windows, computed by the assessment engine. Two devices, a
	// 100-measurement window at enrollment and one a month later.
	a, err := sramaging.NewAssessment(
		sramaging.WithDevices(2),
		sramaging.WithMonths(1),
		sramaging.WithWindowSize(100),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := a.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	m0 := res.Monthly[0]
	wchd := m0.Avg(func(d sramaging.DeviceMonth) float64 { return d.WCHD })
	fhw := m0.Avg(func(d sramaging.DeviceMonth) float64 { return d.FHW })
	fmt.Printf("within-class HD over 100 power-ups: mean %.2f%% (paper: ~2.49%%)\n", 100*wchd)
	fmt.Printf("fractional HW: mean %.2f%% (paper: ~62.7%%)\n", 100*fhw)
	fmt.Printf("between-class HD across the two chips: %.2f%% (paper: ~46.8%%)\n", 100*m0.BCHDMean)
	fmt.Printf("stable cells: %.1f%% (paper: ~85.9%%)\n", 100*m0.Avg(func(d sramaging.DeviceMonth) float64 { return d.StableRatio }))
}
