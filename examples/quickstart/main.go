// Quickstart: simulate one ATmega32u4 SRAM chip, read its power-up
// pattern like the paper's rig does, and compute the three §IV-A quality
// metrics over a handful of measurements.
package main

import (
	"fmt"
	"log"

	sramaging "repro"
	"repro/internal/bitvec"
	"repro/internal/metrics"
)

func main() {
	profile, err := sramaging.ATmega32u4()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device: %s (%d B SRAM, %d B read window, %.1f V)\n",
		profile.Name, profile.SRAMBytes, profile.ReadWindowBytes, profile.OperatingVoltage)

	chip, err := sramaging.NewChip(profile, 42)
	if err != nil {
		log.Fatal(err)
	}

	// First read-out is the reference (the paper's enrollment pattern).
	ref, err := chip.PowerUpWindow()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference pattern: %d bits, FHW %.2f%%\n", ref.Len(), 100*ref.FractionalHammingWeight())

	// 100 further power-ups: reliability and bias.
	var window []*bitvec.Vector
	for i := 0; i < 100; i++ {
		w, err := chip.PowerUpWindow()
		if err != nil {
			log.Fatal(err)
		}
		window = append(window, w)
	}
	wc, err := metrics.WithinClassHD(ref, window)
	if err != nil {
		log.Fatal(err)
	}
	fw, err := metrics.FractionalHW(window)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("within-class HD over 100 power-ups: mean %.2f%% (paper: ~2.49%%), max %.2f%%\n",
		100*wc.Mean, 100*wc.Max)
	fmt.Printf("fractional HW: mean %.2f%% (paper: ~62.7%%)\n", 100*fw.Mean)

	// A second chip shows uniqueness.
	other, err := sramaging.NewChip(profile, 43)
	if err != nil {
		log.Fatal(err)
	}
	ref2, err := other.PowerUpWindow()
	if err != nil {
		log.Fatal(err)
	}
	bc, err := metrics.BetweenClassHD([]*bitvec.Vector{ref, ref2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("between-class HD vs a second chip: %.2f%% (paper: ~46.8%%)\n", 100*bc.Mean)
}
