// Command figures regenerates every figure of the paper from the
// simulator:
//
//	-fig 3    power-cycle waveforms of boards S3, S4, S19, S20
//	-fig 4    start-up pattern bitmap of board 0 (ASCII; PGM with -outdir)
//	-fig 5    WCHD / BCHD / FHW histograms at the start of the test
//	-fig 6a   WCHD development over the campaign (per device)
//	-fig 6b   Hamming-weight development
//	-fig 6c   noise-entropy development
//	-fig 6d   PUF-entropy development
//	-fig accel  nominal vs accelerated WCHD trajectories (§IV-D/§V)
//	-fig corners  cross-condition corner-comparison table (sweep)
//	-fig all  everything above
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	sramaging "repro"
	"repro/internal/desim"
	"repro/internal/device"
	"repro/internal/harness"
	"repro/internal/report"
	"repro/internal/silicon"
	"repro/internal/stats"
	"repro/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run() error {
	fig := flag.String("fig", "all", "figure to regenerate: 3, 4, 5, 6a, 6b, 6c, 6d, accel, corners, all")
	devices := flag.Int("devices", 4, "boards for campaign figures (paper: 16)")
	months := flag.Int("months", 6, "months for campaign figures (paper: 24)")
	window := flag.Int("window", 200, "measurements per window (paper: 1000)")
	seed := flag.Uint64("seed", 20170208, "simulation seed")
	outdir := flag.String("outdir", "", "directory for CSV/PGM outputs (optional)")
	flag.Parse()

	profile, err := silicon.ATmega32u4()
	if err != nil {
		return err
	}
	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			return err
		}
	}

	needCampaign := map[string]bool{"5": true, "6a": true, "6b": true, "6c": true, "6d": true, "all": true}
	var res *sramaging.Results
	if needCampaign[*fig] {
		a, err := sramaging.NewAssessment(
			sramaging.WithProfile(profile),
			sramaging.WithDevices(*devices),
			sramaging.WithMonths(*months),
			sramaging.WithWindowSize(*window),
			sramaging.WithSeed(*seed))
		if err != nil {
			return err
		}
		fmt.Printf("running campaign for figures: %d devices, %d months, %d-measurement windows...\n\n",
			*devices, *months, *window)
		if res, err = a.Run(context.Background()); err != nil {
			return err
		}
	}

	want := func(name string) bool { return *fig == name || *fig == "all" }
	if want("3") {
		if err := fig3(profile, *seed); err != nil {
			return err
		}
	}
	if want("4") {
		if err := fig4(profile, *seed, *outdir); err != nil {
			return err
		}
	}
	if want("5") {
		if err := fig5(res); err != nil {
			return err
		}
	}
	for _, sub := range []struct {
		name, title string
		get         func(sramaging.DeviceMonth) float64
	}{
		{"6a", "Fig. 6a — Average within-class Hamming distance", func(d sramaging.DeviceMonth) float64 { return d.WCHD }},
		{"6b", "Fig. 6b — Average Hamming weight", func(d sramaging.DeviceMonth) float64 { return d.FHW }},
		{"6c", "Fig. 6c — Noise entropy", func(d sramaging.DeviceMonth) float64 { return d.NoiseHmin }},
	} {
		if want(sub.name) {
			plot, err := report.LinePlot(sub.title, res.Series(sub.get), res.MonthLabels(), 14)
			if err != nil {
				return err
			}
			fmt.Println(plot)
		}
	}
	if want("6d") {
		plot, err := report.LinePlot("Fig. 6d — PUF entropy (across devices)",
			[][]float64{res.PUFEntropySeries()}, res.MonthLabels(), 10)
		if err != nil {
			return err
		}
		fmt.Println(plot)
	}
	if want("accel") {
		if err := accelComparison(profile, *months); err != nil {
			return err
		}
	}
	if want("corners") {
		if err := cornerTable(*devices, *months, *window, *seed); err != nil {
			return err
		}
	}
	return nil
}

// cornerTable sweeps a reduced campaign across the screening corners and
// prints the cross-condition comparison — the operating-corner companion
// of Table I (worst-corner WCHD/FHW, stable-cell intersection,
// temperature-sensitivity slopes).
func cornerTable(devices, months, window int, seed uint64) error {
	a, err := sramaging.NewAssessment(
		sramaging.WithDevices(devices),
		sramaging.WithMonths(months),
		sramaging.WithWindowSize(window),
		sramaging.WithSeed(seed),
		sramaging.WithConditions(
			sramaging.ColdCorner,
			sramaging.NominalRoomTemp,
			sramaging.HotCorner,
			sramaging.HotHighVoltage,
		),
	)
	if err != nil {
		return err
	}
	fmt.Printf("running corner sweep: 4 corners, %d devices, %d months, %d-measurement windows...\n\n",
		devices, months, window)
	res, err := a.RunSweep(context.Background())
	if err != nil {
		return err
	}
	fmt.Println(sramaging.RenderCornerTable(res.Comparison))
	return nil
}

// fig3 runs a short rig window with waveform tracing and renders the
// power curves of S3, S4 (layer 0) and S19, S20 (layer 1) — the paper's
// oscilloscope channels.
func fig3(profile silicon.DeviceProfile, seed uint64) error {
	hcfg := harness.DefaultConfig(profile, seed)
	rig, err := harness.New(hcfg)
	if err != nil {
		return err
	}
	rig.Switch().SetTracing(true)
	if err := rig.RunWindow(4, store.Epoch); err != nil {
		return err
	}
	trace := rig.Switch().Trace()
	// Paper boards S3/S4 are global 3/4 on layer 0; S19/S20 map to
	// global 11/12 on layer 1 of the 16-slave rig.
	channels := []int{3, 4, 11, 12}
	fmt.Println("Fig. 3 — power waveforms (5.4 s period: 3.8 s on '-', 1.6 s off '_'; layers out of phase)")
	fmt.Print(report.RenderWaveforms(trace, channels, desim.FromSeconds(21.6), 108))
	for _, ch := range channels {
		period, err := device.CyclePeriod(trace, ch)
		if err != nil {
			return err
		}
		on, err := device.OnTime(trace, ch)
		if err != nil {
			return err
		}
		fmt.Printf("  S%-2d measured period: %.2f s, on-time: %.2f s\n", ch, period.Seconds(), on.Seconds())
	}
	fmt.Println()
	return nil
}

// fig4 renders the first power-up pattern of board 0 as a 128-wide bitmap.
func fig4(profile silicon.DeviceProfile, seed uint64, outdir string) error {
	src, err := sramaging.NewSimulatedSource(profile, 1, seed)
	if err != nil {
		return err
	}
	chip := src.Arrays()[0] // board 0's stream
	w, err := chip.PowerUpWindow()
	if err != nil {
		return err
	}
	fmt.Printf("Fig. 4 — start-up pattern of board 0 (1 KByte, FHW %.1f%%)\n", 100*w.FractionalHammingWeight())
	ascii, err := report.RenderPattern(w, 128)
	if err != nil {
		return err
	}
	fmt.Println(ascii)
	if outdir != "" {
		f, err := os.Create(filepath.Join(outdir, "fig4_pattern.pgm"))
		if err != nil {
			return err
		}
		defer f.Close()
		if err := report.WritePGM(f, w, 128); err != nil {
			return err
		}
		fmt.Println("PGM written to", f.Name())
	}
	return nil
}

// fig5 renders the month-0 WCHD/BCHD/FHW histograms.
func fig5(res *sramaging.Results) error {
	m0 := res.Monthly[0]
	wchd, _ := stats.NewHistogram(0, 1, 200)
	fhw, _ := stats.NewHistogram(0, 1, 200)
	bchd, _ := stats.NewHistogram(0, 1, 200)
	for _, d := range m0.Devices {
		wchd.Add(d.WCHD)
		fhw.Add(d.FHW)
	}
	bchd.Add(m0.BCHDMean)
	bchd.Add(m0.BCHDMin)
	bchd.Add(m0.BCHDMax)
	fmt.Println("Fig. 5 — distributions at the beginning of the test")
	fmt.Println(report.HistogramPlot("Within-class HD (per-device means)", wchd, 40))
	fmt.Println(report.HistogramPlot("Between-class HD (mean/min/max)", bchd, 40))
	fmt.Println(report.HistogramPlot("Fractional HW (per-device means)", fhw, 40))
	return nil
}

// accelComparison prints the nominal vs accelerated WCHD trajectories.
func accelComparison(nominal silicon.DeviceProfile, months int) error {
	accel, err := silicon.CMOS65nmAccelerated()
	if err != nil {
		return err
	}
	tn, err := sramaging.PredictedWCHDTrajectory(nominal, months)
	if err != nil {
		return err
	}
	ta, err := sramaging.PredictedWCHDTrajectory(accel, months)
	if err != nil {
		return err
	}
	labels := make([]string, months+1)
	for m := range labels {
		labels[m] = store.MonthLabel(m)
	}
	plot, err := report.LinePlot("Nominal (*) vs accelerated (+) WCHD trajectories",
		[][]float64{tn, ta}, labels, 14)
	if err != nil {
		return err
	}
	fmt.Println(plot)
	rn := stats.MonthlyChange(tn[0], tn[len(tn)-1], months)
	ra := stats.MonthlyChange(ta[0], ta[len(ta)-1], months)
	fmt.Printf("monthly WCHD change: nominal %+.2f%%/month, accelerated %+.2f%%/month\n", 100*rn, 100*ra)
	fmt.Printf("(paper: +0.74%%/month nominal vs +1.28%%/month accelerated)\n\n")
	return nil
}
