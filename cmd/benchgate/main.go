// Command benchgate turns `go test -bench` output into a benchmark
// manifest and gates regressions against a committed baseline — the
// repo's CI benchmark gate.
//
// Emit a manifest from a bench run (repeat counts are collapsed to the
// per-benchmark MEDIAN, which is robust to scheduler noise):
//
//	go test -run '^$' -bench 'Shard|Streaming' -benchmem -count 5 ./... | benchgate -emit BENCH.json
//
// Gate a manifest against the committed baseline, failing (exit 1) when
// any shared benchmark's ns/op regressed by more than -max-regress
// (default 0.15 = +15%) or its allocs/op regressed by more than
// -max-alloc-regress (default 0.15, plus half-an-alloc slack so an
// alloc-free baseline stays gated without flapping on rounding):
//
//	benchgate -current BENCH.json -baseline BENCH_baseline.json
//
// With -calibrate NAME each manifest's timings are first divided by
// that manifest's own NAME result, so the gated quantity is "slowdown
// relative to the reference benchmark in the same run" — absolute
// machine speed cancels out, which is what lets a baseline committed
// from one machine gate runs on another (CI runners are not the
// machine that seeded the baseline, and raw ns/op would flap).
// Allocation counts are deterministic per machine class and are gated
// raw, never calibrated.
//
// Calibration only cancels machine speed within one workload class, so
// benchmarks of a different class than the reference (microbenchmarks,
// parse/IO-bound replays) are listed in -time-exempt: their timings are
// reported for the log and the artifact, but only their allocs/op
// gates.
//
// Benchmarks present on only one side are reported but never fail the
// gate (new benchmarks must be able to land, retired ones to leave);
// refreshing the baseline is copying BENCH.json over
// BENCH_baseline.json in the same PR that justifies the change.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// Result is one benchmark's collapsed measurement.
type Result struct {
	// NsPerOp is the median ns/op across the run's -count repetitions.
	NsPerOp float64 `json:"ns_per_op"`
	// MBPerS is the median throughput of benchmarks that call
	// b.SetBytes (the archive replay benches) — informational, never
	// gated: it is the human-readable "how close to memory bandwidth"
	// number the manifest records alongside the gated ratios.
	MBPerS float64 `json:"mb_per_s,omitempty"`
	// BytesPerOp / AllocsPerOp are medians of -benchmem columns.
	// AllocsPerOp is gated alongside ns/op; BytesPerOp is informational.
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Samples is how many repetitions were folded in.
	Samples int `json:"samples"`
}

// Manifest is the BENCH.json schema.
type Manifest struct {
	Benchmarks map[string]Result `json:"benchmarks"`
}

// benchLine matches `go test -bench -benchmem` result lines, e.g.
//
//	BenchmarkShardCampaign4-8   62  18934117 ns/op  5124880 B/op  40164 allocs/op
//	BenchmarkArchiveReplayBinary-8  1251  1099087 ns/op  385.78 MB/s  588904 B/op  1229 allocs/op
//
// The -8 GOMAXPROCS suffix is stripped so manifests compare across
// machines with different core counts; a throughput column (benchmarks
// that call b.SetBytes) is captured into the manifest's mb_per_s field
// but never gated.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) MB/s)?(?:\s+([\d.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	emit := flag.String("emit", "", "parse a bench run from stdin and write the manifest to this path")
	current := flag.String("current", "", "manifest to gate (with -baseline)")
	baseline := flag.String("baseline", "", "committed baseline manifest")
	maxRegress := flag.Float64("max-regress", 0.15, "maximum tolerated relative ns/op regression")
	maxAllocRegress := flag.Float64("max-alloc-regress", 0.15, "maximum tolerated relative allocs/op regression (half-an-alloc absolute slack)")
	calibrate := flag.String("calibrate", "", "normalise both manifests by this benchmark's ns/op before gating (machine-neutral)")
	timeExempt := flag.String("time-exempt", "", "regexp of benchmarks whose ns/op is reported but not gated (allocs/op still gates); for workloads whose class differs from the calibration reference")
	flag.Parse()

	var err error
	switch {
	case *emit != "":
		err = runEmit(os.Stdin, *emit)
	case *current != "" && *baseline != "":
		err = runGate(*current, *baseline, *maxRegress, *maxAllocRegress, *calibrate, *timeExempt)
	default:
		flag.Usage()
		err = fmt.Errorf("need -emit, or -current with -baseline")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

// runEmit parses bench output (echoing it through, so the CI log keeps
// the raw run) and writes the collapsed manifest.
func runEmit(in io.Reader, path string) error {
	samples := map[string][]Result{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return fmt.Errorf("line %q: %w", line, err)
		}
		r := Result{NsPerOp: ns}
		if m[3] != "" {
			r.MBPerS, _ = strconv.ParseFloat(m[3], 64)
		}
		if m[4] != "" {
			r.BytesPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			r.AllocsPerOp, _ = strconv.ParseFloat(m[5], 64)
		}
		samples[m[1]] = append(samples[m[1]], r)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(samples) == 0 {
		return fmt.Errorf("no benchmark result lines on stdin")
	}
	manifest := Manifest{Benchmarks: make(map[string]Result, len(samples))}
	for name, runs := range samples {
		manifest.Benchmarks[name] = Result{
			NsPerOp:     median(runs, func(r Result) float64 { return r.NsPerOp }),
			MBPerS:      median(runs, func(r Result) float64 { return r.MBPerS }),
			BytesPerOp:  median(runs, func(r Result) float64 { return r.BytesPerOp }),
			AllocsPerOp: median(runs, func(r Result) float64 { return r.AllocsPerOp }),
			Samples:     len(runs),
		}
	}
	data, err := json.MarshalIndent(manifest, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func median(runs []Result, value func(Result) float64) float64 {
	vals := make([]float64, len(runs))
	for i, r := range runs {
		vals[i] = value(r)
	}
	sort.Float64s(vals)
	mid := len(vals) / 2
	if len(vals)%2 == 1 {
		return vals[mid]
	}
	return (vals[mid-1] + vals[mid]) / 2
}

// runGate compares two manifests and fails on time or allocation
// regressions. A non-empty calibrate benchmark rescales each manifest's
// timings by its own reference first, so the time comparison survives a
// machine change between the baseline run and the gated run; allocation
// counts are compared raw (they are machine-neutral by nature). An
// alloc gate with a zero-alloc baseline fails on any whole alloc
// appearing — exactly the hot-path regression the alloc sweep exists to
// prevent.
//
// Calibration cancels machine speed only within one workload class:
// dividing a memory-bandwidth-bound microbenchmark by a CPU-bound
// campaign benchmark can shift >15% across runner generations with no
// real regression. Benchmarks matching timeExempt therefore report
// their timing but gate only on allocations.
func runGate(currentPath, baselinePath string, maxRegress, maxAllocRegress float64, calibrate, timeExempt string) error {
	cur, err := readManifest(currentPath)
	if err != nil {
		return err
	}
	base, err := readManifest(baselinePath)
	if err != nil {
		return err
	}
	if calibrate != "" {
		if err := cur.normalise(calibrate); err != nil {
			return fmt.Errorf("current: %w", err)
		}
		if err := base.normalise(calibrate); err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		fmt.Printf("timings normalised by %s (machine-neutral ratios, not ns)\n", calibrate)
	}
	var exempt *regexp.Regexp
	if timeExempt != "" {
		var err error
		if exempt, err = regexp.Compile(timeExempt); err != nil {
			return fmt.Errorf("-time-exempt: %w", err)
		}
	}
	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var failures int
	for _, name := range names {
		c := cur.Benchmarks[name]
		b, ok := base.Benchmarks[name]
		if !ok {
			fmt.Printf("NEW    %-44s %14.5g (no baseline)\n", name, c.NsPerOp)
			continue
		}
		change := (c.NsPerOp - b.NsPerOp) / b.NsPerOp
		status := "OK    "
		switch {
		case exempt != nil && exempt.MatchString(name):
			status = "EXEMPT"
		case change > maxRegress:
			status = "REGRES"
			failures++
		}
		fmt.Printf("%s %-44s %14.5g vs %14.5g baseline (%+6.1f%%)\n",
			status, name, c.NsPerOp, b.NsPerOp, 100*change)
		// Allocation gate: relative threshold plus half-an-alloc slack,
		// so a 0-alloc baseline fails on any whole alloc appearing while
		// a populous baseline tolerates median jitter within the ratio.
		if c.AllocsPerOp > b.AllocsPerOp*(1+maxAllocRegress)+0.5 {
			failures++
			fmt.Printf("REGRES %-44s %11.5g allocs/op vs %8.5g baseline\n",
				name, c.AllocsPerOp, b.AllocsPerOp)
		} else if b.AllocsPerOp > 0 || c.AllocsPerOp > 0 {
			fmt.Printf("       %-44s %11.5g allocs/op vs %8.5g baseline\n",
				name, c.AllocsPerOp, b.AllocsPerOp)
		}
		if c.MBPerS > 0 {
			fmt.Printf("       %-44s %11.5g MB/s (informational, not gated)\n",
				name, c.MBPerS)
		}
	}
	for name, b := range base.Benchmarks {
		if _, ok := cur.Benchmarks[name]; !ok {
			fmt.Printf("GONE   %-44s (baseline had %14.5g)\n", name, b.NsPerOp)
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d benchmark gate(s) regressed more than %.0f%% ns/op or %.0f%% allocs/op", failures, 100*maxRegress, 100*maxAllocRegress)
	}
	return nil
}

// normalise rescales every benchmark's ns/op by the reference
// benchmark's ns/op in the SAME manifest. The reference itself becomes
// exactly 1.0 on both sides (it cannot gate itself — that is the price
// of machine neutrality; pick a stable, pure-CPU reference).
func (m *Manifest) normalise(reference string) error {
	ref, ok := m.Benchmarks[reference]
	if !ok || ref.NsPerOp <= 0 {
		return fmt.Errorf("calibration benchmark %q missing (or non-positive)", reference)
	}
	for name, r := range m.Benchmarks {
		r.NsPerOp /= ref.NsPerOp
		m.Benchmarks[name] = r
	}
	return nil
}

func readManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(m.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: empty manifest", path)
	}
	return &m, nil
}
