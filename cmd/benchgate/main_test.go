package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: repro/internal/core
BenchmarkShardCampaign1-8   	      62	  18934117 ns/op	 5124880 B/op	   40164 allocs/op
BenchmarkShardCampaign1-8   	      64	  18000000 ns/op	 5124000 B/op	   40100 allocs/op
BenchmarkShardCampaign1-8   	      60	  20000000 ns/op	 5125000 B/op	   40200 allocs/op
BenchmarkDeviceWindowStreaming1000   	     100	  10000000 ns/op
BenchmarkArchiveReplayBinary-8   	    1251	   1099087 ns/op	 385.78 MB/s	  588904 B/op	    1229 allocs/op
PASS
ok  	repro/internal/core	10.1s
`

func TestEmitParsesAndCollapsesToMedian(t *testing.T) {
	cur := filepath.Join(t.TempDir(), "BENCH.json")
	if err := runEmit(strings.NewReader(benchOutput), cur); err != nil {
		t.Fatal(err)
	}
	m, err := readManifest(cur)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := m.Benchmarks["BenchmarkShardCampaign1"]
	if !ok {
		t.Fatalf("manifest misses BenchmarkShardCampaign1: %+v", m)
	}
	if r.NsPerOp != 18934117 { // the median of the three repetitions
		t.Fatalf("ns/op = %v, want the median 18934117", r.NsPerOp)
	}
	if r.Samples != 3 {
		t.Fatalf("samples = %d, want 3", r.Samples)
	}
	if s, ok := m.Benchmarks["BenchmarkDeviceWindowStreaming1000"]; !ok || s.NsPerOp != 1e7 {
		t.Fatalf("unsuffixed benchmark parsed wrong: %+v ok=%v", s, ok)
	}
	// A throughput column (b.SetBytes) must not eat the -benchmem
	// columns behind it, and lands in the manifest's mb_per_s field.
	if s, ok := m.Benchmarks["BenchmarkArchiveReplayBinary"]; !ok || s.BytesPerOp != 588904 || s.AllocsPerOp != 1229 || s.MBPerS != 385.78 {
		t.Fatalf("MB/s-bearing benchmark parsed wrong: %+v ok=%v", s, ok)
	}
	if err := runEmit(strings.NewReader("PASS\n"), cur); err == nil {
		t.Fatal("emit accepted output with no benchmark lines")
	}
}

func TestGateRegressionThreshold(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, ns float64) string {
		path := filepath.Join(dir, name)
		data := fmt.Sprintf(`{"benchmarks":{"BenchmarkShardCampaign1":{"ns_per_op":%g,"samples":1}}}`, ns)
		if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("base.json", 10000)
	slow := write("slow.json", 11600)
	fine := write("fine.json", 11400)
	fast := write("fast.json", 5000)
	other := filepath.Join(dir, "other.json")
	if err := os.WriteFile(other,
		[]byte(`{"benchmarks":{"BenchmarkBrandNew":{"ns_per_op":1,"samples":1}}}`), 0o644); err != nil {
		t.Fatal(err)
	}

	if err := runGate(base, base, 0.15, 0.15, "", ""); err != nil {
		t.Fatalf("self-gate failed: %v", err)
	}
	if err := runGate(slow, base, 0.15, 0.15, "", ""); err == nil {
		t.Fatal("16% regression passed the gate")
	}
	if err := runGate(fine, base, 0.15, 0.15, "", ""); err != nil {
		t.Fatalf("14%% regression failed the gate: %v", err)
	}
	if err := runGate(fast, base, 0.15, 0.15, "", ""); err != nil {
		t.Fatalf("improvement failed the gate: %v", err)
	}
	// Benchmarks present on only one side never fail the gate.
	if err := runGate(other, base, 0.15, 0.15, "", ""); err != nil {
		t.Fatalf("disjoint manifests failed the gate: %v", err)
	}
}

func TestGateAllocRegression(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, allocs float64) string {
		path := filepath.Join(dir, name)
		data := fmt.Sprintf(`{"benchmarks":{"BenchmarkStream":{"ns_per_op":1000,"allocs_per_op":%g,"samples":1}}}`, allocs)
		if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	zero := write("zero.json", 0)
	one := write("one.json", 1)
	twelve := write("twelve.json", 12)
	fourteen := write("fourteen.json", 14)
	fifteen := write("fifteen.json", 15)

	// Time is identical everywhere; only the alloc gate can fire.
	if err := runGate(zero, zero, 0.15, 0.15, "", ""); err != nil {
		t.Fatalf("zero-alloc self-gate failed: %v", err)
	}
	if err := runGate(one, zero, 0.15, 0.15, "", ""); err == nil {
		t.Fatal("a whole alloc appearing on a 0-alloc baseline passed the gate")
	}
	if err := runGate(fourteen, twelve, 0.15, 0.15, "", ""); err != nil {
		t.Fatalf("12 -> 14 allocs (within 15%% + slack) failed the gate: %v", err)
	}
	if err := runGate(fifteen, twelve, 0.15, 0.15, "", ""); err == nil {
		t.Fatal("12 -> 15 allocs passed the gate")
	}
	if err := runGate(zero, twelve, 0.15, 0.15, "", ""); err != nil {
		t.Fatalf("alloc improvement failed the gate: %v", err)
	}
}

func TestGateTimeExemption(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, ns, allocs float64) string {
		path := filepath.Join(dir, name)
		data := fmt.Sprintf(`{"benchmarks":{"BenchmarkBinaryRecordCodec":{"ns_per_op":%g,"allocs_per_op":%g,"samples":1}}}`, ns, allocs)
		if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("base.json", 500, 0)
	slower := write("slower.json", 900, 0)     // +80% ns, still 0 allocs
	allocing := write("allocing.json", 500, 2) // same ns, allocs appeared

	// A time-exempt benchmark's ns/op never fails the gate...
	if err := runGate(slower, base, 0.15, 0.15, "", "BinaryRecordCodec"); err != nil {
		t.Fatalf("exempted ns/op regression failed the gate: %v", err)
	}
	// ...but without the exemption it does...
	if err := runGate(slower, base, 0.15, 0.15, "", ""); err == nil {
		t.Fatal("unexempted 80% regression passed the gate")
	}
	// ...and the alloc gate still fires on exempted benchmarks.
	if err := runGate(allocing, base, 0.15, 0.15, "", "BinaryRecordCodec"); err == nil {
		t.Fatal("allocs appearing on a time-exempt benchmark passed the gate")
	}
	// A malformed exemption pattern is an error, not a silent no-gate.
	if err := runGate(base, base, 0.15, 0.15, "", "("); err == nil {
		t.Fatal("invalid -time-exempt regexp accepted")
	}
}

func TestGateCalibration(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, ref, shard float64) string {
		path := filepath.Join(dir, name)
		data := fmt.Sprintf(`{"benchmarks":{
			"BenchmarkShardCampaignDirect":{"ns_per_op":%g,"samples":1},
			"BenchmarkShardCampaign1":{"ns_per_op":%g,"samples":1}}}`, ref, shard)
		if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("base.json", 10000, 15000) // overhead ratio 1.5
	// A uniformly 3x slower machine: raw gating would flag +200%, the
	// calibrated gate sees the unchanged 1.5 ratio.
	slowMachine := write("slowmachine.json", 30000, 45000)
	if err := runGate(slowMachine, base, 0.15, 0.15, "BenchmarkShardCampaignDirect", ""); err != nil {
		t.Fatalf("calibrated gate failed on a uniformly slower machine: %v", err)
	}
	if err := runGate(slowMachine, base, 0.15, 0.15, "", ""); err == nil {
		t.Fatal("raw gate unexpectedly passed a 3x slower run (calibration test is vacuous)")
	}
	// A genuine protocol regression: same machine speed, ratio 1.5 → 1.8.
	regressed := write("regressed.json", 10000, 18000)
	if err := runGate(regressed, base, 0.15, 0.15, "BenchmarkShardCampaignDirect", ""); err == nil {
		t.Fatal("calibrated gate missed a 20% overhead-ratio regression")
	}
	// The calibration benchmark must exist on both sides.
	if err := runGate(base, base, 0.15, 0.15, "BenchmarkNoSuch", ""); err == nil {
		t.Fatal("gate accepted a missing calibration benchmark")
	}
}
