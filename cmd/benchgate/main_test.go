package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: repro/internal/core
BenchmarkShardCampaign1-8   	      62	  18934117 ns/op	 5124880 B/op	   40164 allocs/op
BenchmarkShardCampaign1-8   	      64	  18000000 ns/op	 5124000 B/op	   40100 allocs/op
BenchmarkShardCampaign1-8   	      60	  20000000 ns/op	 5125000 B/op	   40200 allocs/op
BenchmarkDeviceWindowStreaming1000   	     100	  10000000 ns/op
PASS
ok  	repro/internal/core	10.1s
`

func TestEmitParsesAndCollapsesToMedian(t *testing.T) {
	cur := filepath.Join(t.TempDir(), "BENCH.json")
	if err := runEmit(strings.NewReader(benchOutput), cur); err != nil {
		t.Fatal(err)
	}
	m, err := readManifest(cur)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := m.Benchmarks["BenchmarkShardCampaign1"]
	if !ok {
		t.Fatalf("manifest misses BenchmarkShardCampaign1: %+v", m)
	}
	if r.NsPerOp != 18934117 { // the median of the three repetitions
		t.Fatalf("ns/op = %v, want the median 18934117", r.NsPerOp)
	}
	if r.Samples != 3 {
		t.Fatalf("samples = %d, want 3", r.Samples)
	}
	if s, ok := m.Benchmarks["BenchmarkDeviceWindowStreaming1000"]; !ok || s.NsPerOp != 1e7 {
		t.Fatalf("unsuffixed benchmark parsed wrong: %+v ok=%v", s, ok)
	}
	if err := runEmit(strings.NewReader("PASS\n"), cur); err == nil {
		t.Fatal("emit accepted output with no benchmark lines")
	}
}

func TestGateRegressionThreshold(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, ns float64) string {
		path := filepath.Join(dir, name)
		data := fmt.Sprintf(`{"benchmarks":{"BenchmarkShardCampaign1":{"ns_per_op":%g,"samples":1}}}`, ns)
		if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("base.json", 10000)
	slow := write("slow.json", 11600)
	fine := write("fine.json", 11400)
	fast := write("fast.json", 5000)
	other := filepath.Join(dir, "other.json")
	if err := os.WriteFile(other,
		[]byte(`{"benchmarks":{"BenchmarkBrandNew":{"ns_per_op":1,"samples":1}}}`), 0o644); err != nil {
		t.Fatal(err)
	}

	if err := runGate(base, base, 0.15, ""); err != nil {
		t.Fatalf("self-gate failed: %v", err)
	}
	if err := runGate(slow, base, 0.15, ""); err == nil {
		t.Fatal("16% regression passed the gate")
	}
	if err := runGate(fine, base, 0.15, ""); err != nil {
		t.Fatalf("14%% regression failed the gate: %v", err)
	}
	if err := runGate(fast, base, 0.15, ""); err != nil {
		t.Fatalf("improvement failed the gate: %v", err)
	}
	// Benchmarks present on only one side never fail the gate.
	if err := runGate(other, base, 0.15, ""); err != nil {
		t.Fatalf("disjoint manifests failed the gate: %v", err)
	}
}

func TestGateCalibration(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, ref, shard float64) string {
		path := filepath.Join(dir, name)
		data := fmt.Sprintf(`{"benchmarks":{
			"BenchmarkShardCampaignDirect":{"ns_per_op":%g,"samples":1},
			"BenchmarkShardCampaign1":{"ns_per_op":%g,"samples":1}}}`, ref, shard)
		if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("base.json", 10000, 15000) // overhead ratio 1.5
	// A uniformly 3x slower machine: raw gating would flag +200%, the
	// calibrated gate sees the unchanged 1.5 ratio.
	slowMachine := write("slowmachine.json", 30000, 45000)
	if err := runGate(slowMachine, base, 0.15, "BenchmarkShardCampaignDirect"); err != nil {
		t.Fatalf("calibrated gate failed on a uniformly slower machine: %v", err)
	}
	if err := runGate(slowMachine, base, 0.15, ""); err == nil {
		t.Fatal("raw gate unexpectedly passed a 3x slower run (calibration test is vacuous)")
	}
	// A genuine protocol regression: same machine speed, ratio 1.5 → 1.8.
	regressed := write("regressed.json", 10000, 18000)
	if err := runGate(regressed, base, 0.15, "BenchmarkShardCampaignDirect"); err == nil {
		t.Fatal("calibrated gate missed a 20% overhead-ratio regression")
	}
	// The calibration benchmark must exist on both sides.
	if err := runGate(base, base, 0.15, "BenchmarkNoSuch"); err == nil {
		t.Fatal("gate accepted a missing calibration benchmark")
	}
}
