// Command shardworker serves one shard of a sharded assessment
// campaign. It is not run by hand: a coordinator (agingtest -shards,
// sweep -shards, or any ShardedSource with an exec transport) spawns one
// worker per shard and speaks the length-prefixed shard protocol
// (version-gated in the handshake; measurements travel as batched
// binary record frames) on the worker's stdin/stdout. The handshake
// carries the full configuration —
// mode (sim, rig or archive replay), device profile, campaign seed,
// environmental scenario, shard assignment — so the command takes no
// flags; diagnostics go to stderr.
package main

import (
	"context"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
)

// stdio is the worker's end of the coordinator pipe.
type stdio struct {
	io.Reader
	io.Writer
}

func main() {
	if err := core.ServeShardWorker(context.Background(), stdio{os.Stdin, os.Stdout}); err != nil {
		fmt.Fprintln(os.Stderr, "shardworker:", err)
		os.Exit(1)
	}
}
