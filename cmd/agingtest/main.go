// Command agingtest runs the long-term SRAM PUF assessment campaign — the
// simulated counterpart of the paper's two-year measurement — and prints
// Table I plus the monthly metric series.
//
// The default configuration is a quick demonstration (4 devices, 6
// months, 200-measurement windows, direct sampling). The paper's full
// campaign is:
//
//	agingtest -devices 16 -months 24 -window 1000
//
// With -archive FILE the campaign runs through the full rig simulation
// (masters, power switch, I2C, Raspberry Pi) and streams every archived
// measurement record as JSON lines, the format cmd/evaluate consumes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/report"
	"repro/internal/silicon"
	"repro/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "agingtest:", err)
		os.Exit(1)
	}
}

func run() error {
	devices := flag.Int("devices", 4, "boards under test (paper: 16)")
	months := flag.Int("months", 6, "campaign length in months (paper: 24)")
	window := flag.Int("window", 200, "measurements per monthly window (paper: 1000)")
	seed := flag.Uint64("seed", 20170208, "campaign seed")
	useHarness := flag.Bool("harness", false, "route windows through the full rig simulation")
	i2cErr := flag.Float64("i2c-error", 0, "I2C byte corruption rate (harness path)")
	csvDir := flag.String("csv", "", "directory for Fig. 6 series CSV export")
	archive := flag.String("archive", "", "write a JSON-lines measurement archive (forces -harness)")
	flag.Parse()

	profile, err := silicon.ATmega32u4()
	if err != nil {
		return err
	}

	if *archive != "" {
		return collectArchive(profile, *devices, *months, *window, *seed, *i2cErr, *archive)
	}

	cfg := core.Config{
		Profile:      profile,
		Devices:      *devices,
		Months:       *months,
		WindowSize:   *window,
		Seed:         *seed,
		UseHarness:   *useHarness,
		I2CErrorRate: *i2cErr,
	}
	camp, err := core.NewCampaign(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("running campaign: %d devices, %d months, %d-measurement windows (harness=%v)\n",
		cfg.Devices, cfg.Months, cfg.WindowSize, cfg.UseHarness)
	res, err := camp.Run()
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(report.RenderTableI(res.Table))
	fmt.Println()

	wchd := res.Series(func(d core.DeviceMonth) float64 { return d.WCHD })
	plot, err := report.LinePlot("Fig. 6a — WCHD development (one line per device)", wchd, res.MonthLabels(), 12)
	if err != nil {
		return err
	}
	fmt.Println(plot)

	if *csvDir != "" {
		if err := exportCSVs(res, *csvDir); err != nil {
			return err
		}
		fmt.Println("series CSVs written to", *csvDir)
	}
	return nil
}

func exportCSVs(res *core.Results, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	labels := res.MonthLabels()
	headers := make([]string, len(res.Monthly[0].Devices))
	for d := range headers {
		headers[d] = fmt.Sprintf("board%d", d)
	}
	series := map[string][][]float64{
		"fig6a_wchd.csv":          res.Series(func(d core.DeviceMonth) float64 { return d.WCHD }),
		"fig6b_hw.csv":            res.Series(func(d core.DeviceMonth) float64 { return d.FHW }),
		"fig6c_noise_entropy.csv": res.Series(func(d core.DeviceMonth) float64 { return d.NoiseHmin }),
		"stable_cells.csv":        res.Series(func(d core.DeviceMonth) float64 { return d.StableRatio }),
	}
	for name, s := range series {
		if err := writeCSV(filepath.Join(dir, name), labels, headers, s); err != nil {
			return err
		}
	}
	return writeCSV(filepath.Join(dir, "fig6d_puf_entropy.csv"), labels,
		[]string{"puf_entropy"}, [][]float64{res.PUFEntropySeries()})
}

func writeCSV(path string, labels, headers []string, series [][]float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := report.WriteSeriesCSV(f, "month", labels, headers, series); err != nil {
		return err
	}
	return f.Close()
}

// collectArchive runs monthly windows through the full rig and streams
// every record straight to a JSON-lines file as it is captured — no
// window is ever buffered in memory.
func collectArchive(profile silicon.DeviceProfile, devices, months, window int, seed uint64, i2cErr float64, path string) error {
	if devices%2 != 0 {
		return fmt.Errorf("harness path needs an even device count, got %d", devices)
	}
	hcfg := harness.DefaultConfig(profile, seed)
	hcfg.SlavesPerLayer = devices / 2
	hcfg.I2CErrorRate = i2cErr
	rig, err := harness.New(hcfg)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	jw := store.NewJSONLWriter(f)
	const cyclesPerMonth = uint64(30.44 * 24 * 3600 / 5.4)
	for m := 0; m <= months; m++ {
		for _, a := range rig.Arrays() {
			if err := a.AgeTo(float64(m)); err != nil {
				return err
			}
		}
		rig.SetCycleBase(uint64(m) * cyclesPerMonth)
		rig.SetSeqBase(uint64(m) * cyclesPerMonth)
		archived := 0
		err := rig.StreamWindow(window, store.MonthlyWindowStart(m), func(rec store.Record) error {
			archived++
			return jw.Write(rec)
		})
		if err != nil {
			return err
		}
		fmt.Printf("month %2d (%s): %d records archived\n", m, store.MonthLabel(m), archived)
	}
	if err := jw.Flush(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Println("archive written to", path)
	return nil
}
