// Command agingtest runs the long-term SRAM PUF assessment campaign — the
// simulated counterpart of the paper's two-year measurement — and prints
// Table I plus the monthly metric series, through the composable
// Source/Assessment API.
//
// The default configuration is a quick demonstration (4 devices, 6
// months, 200-measurement windows, direct sampling). The paper's full
// campaign is:
//
//	agingtest -devices 16 -months 24 -window 1000
//
// With -harness the campaign runs through the full rig simulation
// (masters, power switch, I2C); with -archive FILE it additionally
// streams every measurement record to an archive as it is captured —
// the format cmd/evaluate replays — while the same pass evaluates the
// campaign. The archive format follows the extension: `.bin` streams
// the indexed binary record codec (half the bytes, no per-record JSON
// churn, and a trailer index written at the end of collection so
// evaluate replays any month with an O(1) seek),
// anything else streams JSON lines. -workers bounds evaluation
// parallelism.
//
// With -shards N the device population is partitioned across N shard
// workers (subprocesses running the -shardworker binary, or in-process
// goroutines when no binary is given) and the merged campaign is
// bit-identical to the single-process run:
//
//	agingtest -shards 4 -shardworker ./shardworker -devices 16 -months 24 -window 1000
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	sramaging "repro"
	"repro/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "agingtest:", err)
		os.Exit(1)
	}
}

func run() error {
	devices := flag.Int("devices", 4, "boards under test (paper: 16)")
	profileName := flag.String("profile", "", "registered device profile name (default atmega32u4, the paper's chip; see sramaging.RegisteredProfiles)")
	fleetNames := flag.String("fleet", "", "comma-separated registered profile names: run a heterogeneous fleet campaign with per-profile breakdowns (exclusive with -profile, -harness, -archive, -keylife)")
	screenFloor := flag.Float64("screen-floor", 0, "corner-screening stability floor in [0, 1): prune devices whose stable-cell ratio falls below it between months (0: off)")
	lazy := flag.Bool("lazy", false, "derive each chip on demand inside its worker slot, holding O(workers) arrays instead of the whole population (default on for -fleet; bits identical either way)")
	months := flag.Int("months", 6, "campaign length in months (paper: 24)")
	window := flag.Int("window", 200, "measurements per monthly window (paper: 1000)")
	seed := flag.Uint64("seed", 20170208, "campaign seed")
	useHarness := flag.Bool("harness", false, "route windows through the full rig simulation")
	i2cErr := flag.Float64("i2c-error", 0, "I2C byte corruption rate (harness path)")
	workers := flag.Int("workers", 0, "evaluation parallelism (0: one goroutine per device; with -shards: total budget split across shards)")
	shards := flag.Int("shards", 0, "fan the campaign across N shard workers (0: single process)")
	shardWorker := flag.String("shardworker", "", "shardworker binary for -shards (default: in-process workers)")
	csvDir := flag.String("csv", "", "directory for Fig. 6 series CSV export")
	archive := flag.String("archive", "", "stream a measurement archive (forces -harness); a .bin path streams the binary codec, anything else JSON lines")
	keylife := flag.Bool("keylife", false, "run the key-lifecycle workload: burn-in screening + enrollment at month 0, streamed reconstruction metrics after")
	remote := flag.String("remote", "", "submit the campaign to an assessd service at this base URL instead of running locally")
	remoteDetach := flag.Bool("remote-detach", false, "with -remote: submit and print the campaign ID without waiting")
	remoteWatch := flag.String("remote-watch", "", "with -remote: stream an existing campaign ID instead of submitting")
	remoteStatus := flag.String("remote-status", "", "with -remote: print a campaign's status and exit")
	remoteCancel := flag.String("remote-cancel", "", "with -remote: cancel a campaign and exit")
	flag.Parse()

	var fleet []string
	if *fleetNames != "" {
		fleet = strings.Split(*fleetNames, ",")
		if !flagWasSet("lazy") {
			// Fleets are where populations get large; lazy construction is
			// bit-identical, so it is the fleet default.
			*lazy = true
		}
		switch {
		case *profileName != "":
			return errors.New("-fleet and -profile are exclusive (the fleet lists its profiles)")
		case *useHarness || *archive != "":
			return errors.New("-fleet campaigns sample the sim source directly; -harness/-archive are single-profile")
		case *keylife:
			return errors.New("the key-lifecycle workload is single-profile; -fleet and -keylife are exclusive")
		}
	}

	if *remote != "" {
		return runRemote(remoteFlags{
			base:   *remote,
			detach: *remoteDetach,
			watch:  *remoteWatch,
			status: *remoteStatus,
			cancel: *remoteCancel,
			spec: sramaging.ServeSpec{
				Profile:     *profileName,
				Fleet:       fleet,
				Devices:     *devices,
				Months:      *months,
				Window:      *window,
				Seed:        *seed,
				I2CError:    *i2cErr,
				Workers:     *workers,
				Shards:      *shards,
				KeyLife:     *keylife,
				ScreenFloor: *screenFloor,
				Lazy:        *lazy && len(fleet) > 0,
			},
		})
	}

	opts := []sramaging.Option{
		sramaging.WithMonths(*months),
		sramaging.WithWindowSize(*window),
		sramaging.WithWorkers(*workers),
	}
	var profile sramaging.DeviceProfile
	if len(fleet) > 0 {
		profiles := make([]sramaging.DeviceProfile, len(fleet))
		for i, name := range fleet {
			p, err := resolveProfile(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			profiles[i] = p
		}
		fl, err := sramaging.NewFleet(profiles...)
		if err != nil {
			return err
		}
		opts = append(opts, sramaging.WithFleet(fl), sramaging.WithDevices(*devices), sramaging.WithSeed(*seed))
	} else {
		var err error
		if profile, err = resolveProfile(*profileName); err != nil {
			return err
		}
	}
	if *screenFloor > 0 {
		opts = append(opts, sramaging.WithScreening(*screenFloor))
	}
	if *lazy {
		opts = append(opts, sramaging.WithLazy())
	}
	if *keylife {
		// ScreenSeed pins the screening round to the CLI seed even on the
		// -archive path, where the assessment sees only a WithSource rig.
		opts = append(opts, sramaging.WithKeyLifecycle(sramaging.KeyLifeConfig{ScreenSeed: *seed}))
	}
	harnessPath := *useHarness || *archive != ""
	var transport sramaging.ShardTransport
	if *shardWorker != "" {
		transport = sramaging.ExecShardTransport(*shardWorker)
	}

	var jw store.RecordWriter
	var archiveFile *os.File
	var archived int
	// rig is the record-tappable source of the -archive collection path:
	// the rig simulation, optionally sharded across workers.
	var rig interface {
		sramaging.Source
		SetTap(func(sramaging.Record) error)
	}
	if *archive != "" {
		// The rig is built (and validated) here; its record tap and the
		// output file are only wired up after the whole assessment has
		// validated, so a bad configuration cannot truncate an existing
		// archive.
		if *shards > 0 {
			sharded, err := sramaging.NewShardedRigSource(profile, *devices, *seed, *i2cErr, *shards, transport)
			if err != nil {
				return err
			}
			defer sharded.Close()
			rig = sharded
		} else {
			plain, err := sramaging.NewRigSource(profile, *devices, *seed, *i2cErr)
			if err != nil {
				return err
			}
			rig = plain
		}
		opts = append(opts, sramaging.WithSource(rig))
	} else {
		if len(fleet) == 0 {
			opts = append(opts,
				sramaging.WithProfile(profile),
				sramaging.WithDevices(*devices),
				sramaging.WithSeed(*seed))
			if harnessPath {
				opts = append(opts,
					sramaging.WithHarness(),
					sramaging.WithI2CErrorRate(*i2cErr))
			}
		}
		if *shards > 0 {
			opts = append(opts, sramaging.WithShards(*shards))
			if transport != nil {
				opts = append(opts, sramaging.WithShardTransport(transport))
			}
		}
	}
	prevArchived := 0
	opts = append(opts, sramaging.WithProgress(func(ev sramaging.MonthEval) {
		line := fmt.Sprintf("month %2d (%s): WCHD %.3f%%", ev.Month, ev.Label,
			100*ev.Avg(func(d sramaging.DeviceMonth) float64 { return d.WCHD }))
		if *screenFloor > 0 {
			line += fmt.Sprintf(", %d survivors", ev.Survivors)
			if len(ev.Pruned) > 0 {
				line += fmt.Sprintf(" (pruned %v)", ev.Pruned)
			}
		}
		if jw != nil {
			line += fmt.Sprintf(", %d records archived", archived-prevArchived)
			prevArchived = archived
		}
		fmt.Println(line)
	}))

	a, err := sramaging.NewAssessment(opts...)
	if err != nil {
		return err
	}
	if rig != nil {
		// Every configuration knob has validated: now it is safe to
		// create (or truncate) the archive file and install the tap.
		f, err := os.Create(*archive)
		if err != nil {
			return err
		}
		defer f.Close()
		archiveFile = f
		jw = store.NewWriterForPath(*archive, f)
		rig.SetTap(func(rec sramaging.Record) error {
			archived++
			return jw.Write(rec)
		})
	}
	fmt.Printf("running campaign: %d devices, %d months, %d-measurement windows (harness=%v, workers=%d, shards=%d)\n",
		*devices, *months, *window, harnessPath, *workers, *shards)
	res, err := a.Run(context.Background())
	if err != nil {
		return err
	}
	if jw != nil {
		if err := jw.Flush(); err != nil {
			return err
		}
		if err := archiveFile.Close(); err != nil {
			return err
		}
		fmt.Println("archive written to", *archive)
	}
	fmt.Println()
	fmt.Print(sramaging.RenderTableI(res.Table))
	fmt.Println()
	if kt := sramaging.RenderKeyLifeTable(res); kt != "" {
		fmt.Print(kt)
		fmt.Println()
	}
	if *screenFloor > 0 {
		printScreeningSummary(res, *devices)
	}

	wchd := res.Series(func(d sramaging.DeviceMonth) float64 { return d.WCHD })
	plot, err := sramaging.RenderLinePlot("Fig. 6a — WCHD development (one line per device)",
		wchd, res.MonthLabels(), 12)
	if err != nil {
		return err
	}
	fmt.Println(plot)

	if *csvDir != "" {
		if err := exportCSVs(res, *csvDir); err != nil {
			return err
		}
		fmt.Println("series CSVs written to", *csvDir)
	}
	return nil
}

// resolveProfile maps the -profile flag through the profile registry;
// empty keeps the paper's chip.
func resolveProfile(name string) (sramaging.DeviceProfile, error) {
	if name == "" {
		return sramaging.ATmega32u4()
	}
	return sramaging.ProfileByName(name)
}

// flagWasSet reports whether a flag was given explicitly on the command
// line (as opposed to holding its default).
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// printScreeningSummary renders the corner-screening outcome: survivor
// count and the month-by-month attrition, per profile where the campaign
// knows one.
func printScreeningSummary(res *sramaging.Results, devices int) {
	last := res.Monthly[len(res.Monthly)-1]
	fmt.Printf("screening: %d of %d devices survive\n", last.Survivors, devices)
	for _, ev := range res.Monthly {
		if len(ev.Pruned) == 0 {
			continue
		}
		names := make([]string, 0, len(ev.Attrition))
		for name := range ev.Attrition {
			names = append(names, name)
		}
		sort.Strings(names)
		parts := make([]string, 0, len(names))
		for _, name := range names {
			if name == "" {
				parts = append(parts, fmt.Sprintf("%d", ev.Attrition[name]))
			} else {
				parts = append(parts, fmt.Sprintf("%s: %d", name, ev.Attrition[name]))
			}
		}
		fmt.Printf("  after %s: pruned %s\n", ev.Label, strings.Join(parts, ", "))
	}
	fmt.Println()
}

// remoteFlags bundles the -remote client mode's inputs.
type remoteFlags struct {
	base, watch, status, cancel string
	detach                      bool
	spec                        sramaging.ServeSpec
}

// runRemote drives an assessd service: submit (or attach to) a campaign,
// stream its months as they finalise, and render the final table from
// the streamed results — byte-identical to the local run of the same
// parameters, since the service's rig path and the local sim path
// produce the same measurement streams.
func runRemote(rf remoteFlags) error {
	ctx := context.Background()
	client := &sramaging.ServeClient{Base: rf.base}
	switch {
	case rf.status != "":
		st, err := client.Status(ctx, rf.status)
		if err != nil {
			return err
		}
		fmt.Printf("campaign %s: %s, %d months done", st.ID, st.Status, st.MonthsDone)
		if st.Error != "" {
			fmt.Printf(" (%s: %s)", st.ErrKind, st.Error)
		}
		fmt.Println()
		return nil
	case rf.cancel != "":
		st, err := client.Cancel(ctx, rf.cancel)
		if err != nil {
			return err
		}
		fmt.Printf("campaign %s: %s\n", st.ID, st.Status)
		return nil
	}

	onMonth := func(ev sramaging.MonthEval) {
		fmt.Printf("month %2d (%s): WCHD %.3f%%\n", ev.Month, ev.Label,
			100*ev.Avg(func(d sramaging.DeviceMonth) float64 { return d.WCHD }))
	}
	var (
		id  string
		res *sramaging.Results
		err error
	)
	if rf.watch != "" {
		id = rf.watch
		fmt.Printf("streaming campaign %s from %s\n", id, rf.base)
		res, err = client.Watch(ctx, id, onMonth)
	} else {
		if rf.detach {
			st, err := client.Submit(ctx, rf.spec)
			if err != nil {
				return err
			}
			fmt.Println(st.ID)
			return nil
		}
		fmt.Printf("submitting campaign to %s: %d devices, %d months, %d-measurement windows (shards=%d)\n",
			rf.base, rf.spec.Devices, rf.spec.Months, rf.spec.Window, rf.spec.Shards)
		id, res, err = client.Run(ctx, rf.spec, onMonth)
	}
	if err != nil {
		return err
	}
	fmt.Printf("campaign %s done\n", id)
	fmt.Println()
	fmt.Print(sramaging.RenderTableI(res.Table))
	fmt.Println()
	if kt := sramaging.RenderKeyLifeTable(res); kt != "" {
		fmt.Print(kt)
		fmt.Println()
	}
	wchd := res.Series(func(d sramaging.DeviceMonth) float64 { return d.WCHD })
	plot, err := sramaging.RenderLinePlot("Fig. 6a — WCHD development (one line per device)",
		wchd, res.MonthLabels(), 12)
	if err != nil {
		return err
	}
	fmt.Println(plot)
	return nil
}

func exportCSVs(res *sramaging.Results, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	labels := res.MonthLabels()
	headers := make([]string, len(res.Monthly[0].Devices))
	for d := range headers {
		headers[d] = fmt.Sprintf("board%d", d)
	}
	series := map[string][][]float64{
		"fig6a_wchd.csv":          res.Series(func(d sramaging.DeviceMonth) float64 { return d.WCHD }),
		"fig6b_hw.csv":            res.Series(func(d sramaging.DeviceMonth) float64 { return d.FHW }),
		"fig6c_noise_entropy.csv": res.Series(func(d sramaging.DeviceMonth) float64 { return d.NoiseHmin }),
		"stable_cells.csv":        res.Series(func(d sramaging.DeviceMonth) float64 { return d.StableRatio }),
	}
	for name, s := range series {
		if err := writeCSV(filepath.Join(dir, name), labels, headers, s); err != nil {
			return err
		}
	}
	return writeCSV(filepath.Join(dir, "fig6d_puf_entropy.csv"), labels,
		[]string{"puf_entropy"}, [][]float64{res.PUFEntropySeries()})
}

func writeCSV(path string, labels, headers []string, series [][]float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := sramaging.WriteSeriesCSV(f, "month", labels, headers, series); err != nil {
		return err
	}
	return f.Close()
}
