// Command trnggen generates random bytes from the simulated SRAM-PUF TRNG
// (paper §II-A2, ref [12]) and optionally assesses the output with the SP
// 800-90B min-entropy estimators and the SP 800-22 randomness battery.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"

	sramaging "repro"
	"repro/internal/sp80090b"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "trnggen:", err)
		os.Exit(1)
	}
}

func run() error {
	nBytes := flag.Int("bytes", 64, "random bytes to generate")
	seed := flag.Uint64("seed", 1, "simulated chip seed")
	format := flag.String("format", "hex", "output format: hex or raw")
	assess := flag.Bool("assess", false, "run SP 800-90B min-entropy estimators on the conditioned output")
	raw := flag.Bool("assess-raw", false, "also assess the RAW (unconditioned) SRAM noise source")
	battery := flag.Bool("battery", false, "run the SP 800-22 randomness battery on the conditioned output")
	flag.Parse()
	if *nBytes < 1 {
		return fmt.Errorf("need -bytes >= 1")
	}

	profile, err := sramaging.ATmega32u4()
	if err != nil {
		return err
	}
	chip, err := sramaging.NewChip(profile, *seed)
	if err != nil {
		return err
	}
	gen, err := sramaging.NewTRNG(chip)
	if err != nil {
		return err
	}
	out := make([]byte, *nBytes)
	if _, err := io.ReadFull(gen, out); err != nil {
		return err
	}
	switch *format {
	case "hex":
		fmt.Println(hex.EncodeToString(out))
	case "raw":
		if _, err := os.Stdout.Write(out); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	fmt.Fprintf(os.Stderr, "consumed %d power-up patterns for %d bytes\n", gen.Patterns(), gen.Emitted())

	if *assess || *battery {
		// Use a fresh, larger sample for assessment.
		sample := make([]byte, 16384)
		if _, err := io.ReadFull(gen, sample); err != nil {
			return err
		}
		if *assess {
			a, err := sramaging.AssessMinEntropy(sample)
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "\nSP 800-90B min-entropy estimates (conditioned output, bits/bit):\n")
			fmt.Fprintf(os.Stderr, "  MCV %.3f  Collision %.3f  Markov %.3f  Compression %.3f  t-Tuple %.3f  LRS %.3f\n",
				a.MCV, a.Collision, a.Markov, a.Compression, a.TTuple, a.LRS)
			fmt.Fprintf(os.Stderr, "  overall: %.3f\n", a.Min)
		}
		if *battery {
			results, err := sramaging.RandomnessBattery(sample)
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "\nSP 800-22 battery (alpha = %.2f):\n", sramaging.RandomnessAlpha)
			for _, r := range results {
				status := "PASS"
				if !r.Pass {
					status = "FAIL"
				}
				fmt.Fprintf(os.Stderr, "  %-28s p=%.4f  %s\n", r.Name, r.PValue, status)
			}
			passed, total := sramaging.RandomnessPassCount(results)
			fmt.Fprintf(os.Stderr, "  %d/%d passed\n", passed, total)
		}
	}

	if *raw {
		// Assess the raw source: concatenated power-up windows, which carry
		// the measured ~3% noise min-entropy only in their unstable cells
		// (and heavy bias), demonstrating WHY conditioning is mandatory.
		// The stream is folded into (ones, total) counts as it is sampled —
		// one reused scratch vector instead of a 200,000-entry bit slice.
		scratch := sramaging.NewPattern(profile.ReadWindowBits())
		ones, total := 0, 0
		for total < 200000 {
			if err := chip.PowerUpWindowInto(scratch); err != nil {
				return err
			}
			ones += scratch.HammingWeight()
			total += scratch.Len()
		}
		mcv, err := sp80090b.MostCommonValueCounts(ones, total)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "\nraw source MCV min-entropy: %.3f bits/bit (bias alone; conditioning required)\n", mcv)
	}
	return nil
}
