// Command evaluate replays the paper's offline analysis: it reads a
// JSON-lines measurement archive (as produced by agingtest -archive, or
// by a real Raspberry-Pi-backed rig using the same schema), selects the
// monthly evaluation windows, and computes every Table I metric through
// the same streaming accumulators the campaign engine uses.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/store"
	"repro/internal/stream"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "evaluate:", err)
		os.Exit(1)
	}
}

func run() error {
	path := flag.String("archive", "", "JSON-lines measurement archive (required)")
	window := flag.Int("window", 200, "measurements per monthly evaluation window")
	flag.Parse()
	if *path == "" {
		flag.Usage()
		return fmt.Errorf("missing -archive")
	}
	f, err := os.Open(*path)
	if err != nil {
		return err
	}
	defer f.Close()
	archive, err := store.ReadJSONL(f)
	if err != nil {
		return err
	}
	boards := archive.Boards()
	if len(boards) < 2 {
		return fmt.Errorf("archive has %d boards; need >= 2 for uniqueness metrics", len(boards))
	}
	fmt.Printf("archive: %d records from %d boards\n\n", archive.Len(), len(boards))

	// Discover which monthly windows are present.
	var monthsPresent []int
	for m := 0; m <= 600; m++ {
		start := store.MonthlyWindowStart(m)
		if start.After(lastWall(archive, boards)) {
			break
		}
		if _, err := archive.Window(boards[0], start, *window); err == nil {
			monthsPresent = append(monthsPresent, m)
		}
	}
	if len(monthsPresent) == 0 {
		return fmt.Errorf("no complete %d-measurement monthly window found", *window)
	}

	refs := make(map[int]*bitvec.Vector)
	var evals []core.MonthEval
	for _, m := range monthsPresent {
		start := store.MonthlyWindowStart(m)
		eval := core.MonthEval{Month: m, Label: store.MonthLabel(m)}
		cross := stream.NewCross()
		for _, b := range boards {
			recs, err := archive.Window(b, start, *window)
			if err != nil {
				return fmt.Errorf("board %d month %d: %w", b, m, err)
			}
			acc := stream.NewDevice(refs[b])
			if _, err := stream.Drain(stream.Slice(store.Patterns(recs)), acc); err != nil {
				return fmt.Errorf("board %d month %d: %w", b, m, err)
			}
			if refs[b] == nil {
				refs[b] = acc.Ref()
			}
			r, err := acc.Result()
			if err != nil {
				return err
			}
			eval.Devices = append(eval.Devices, core.DeviceMonth{
				WCHD: r.WCHDMean, FHW: r.FHW, NoiseHmin: r.NoiseHmin, StableRatio: r.StableRatio,
			})
			if err := cross.Add(acc.First()); err != nil {
				return err
			}
		}
		cr, err := cross.Result()
		if err != nil {
			return err
		}
		eval.BCHDMean, eval.BCHDMin, eval.BCHDMax = cr.BCHDMean, cr.BCHDMin, cr.BCHDMax
		eval.PUFHmin = cr.PUFHmin
		evals = append(evals, eval)

		fmt.Printf("%s: WCHD %.3f%%  HW %.2f%%  stable %.2f%%  Hnoise %.3f%%  BCHD %.2f%%  Hpuf %.2f%%\n",
			eval.Label,
			100*eval.Avg(func(d core.DeviceMonth) float64 { return d.WCHD }),
			100*eval.Avg(func(d core.DeviceMonth) float64 { return d.FHW }),
			100*eval.Avg(func(d core.DeviceMonth) float64 { return d.StableRatio }),
			100*eval.Avg(func(d core.DeviceMonth) float64 { return d.NoiseHmin }),
			100*eval.BCHDMean, 100*eval.PUFHmin)
	}

	if len(evals) >= 2 {
		first, last := evals[0], evals[len(evals)-1]
		span := last.Month - first.Month
		fmt.Println()
		fmt.Printf("Table I summary over months %d..%d:\n\n", first.Month, last.Month)
		fmt.Print(report.RenderTableI(core.BuildTable(first, last, span)))
	}
	return nil
}

func lastWall(a *store.Archive, boards []int) time.Time {
	var last time.Time
	for _, b := range boards {
		recs := a.Records(b)
		if len(recs) > 0 && recs[len(recs)-1].Wall.After(last) {
			last = recs[len(recs)-1].Wall
		}
	}
	return last
}
