// Command evaluate replays the paper's offline analysis: it reads a
// measurement archive (as produced by agingtest -archive, or by a real
// Raspberry-Pi-backed rig using the same schema) and runs the exact
// same Assessment the live campaign runs — archive replay is a
// first-class Source, so the monthly window selection, the streaming
// accumulators and the Table I assembly are one code path. All archive
// formats — JSON lines and both binary versions — are detected by their
// leading bytes; replaying any of them yields bit-identical tables.
// Indexed (v2) archives replay seek-based: each month's windows stream
// straight from the file. -index upgrades an older archive in place.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	sramaging "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "evaluate:", err)
		os.Exit(1)
	}
}

// indexedNote annotates the archive banner when replay is seek-based.
func indexedNote(info sramaging.ArchiveInfo) string {
	if info.Indexed {
		return ", indexed"
	}
	return ""
}

func run() error {
	path := flag.String("archive", "", "measurement archive, JSONL or binary (required)")
	window := flag.Int("window", 200, "measurements per monthly evaluation window")
	shards := flag.Int("shards", 0, "fan the replay across N shard workers (0: single process)")
	shardWorker := flag.String("shardworker", "", "shardworker binary for -shards (default: in-process workers)")
	index := flag.Bool("index", false, "upgrade the archive in place to the indexed binary format (v2) before replaying")
	keylife := flag.Bool("keylife", false, "replay the key-lifecycle workload: screening + enrollment re-derived from -seed, reconstruction from the archived measurements")
	seed := flag.Uint64("seed", 20170208, "campaign seed of the recorded campaign (screens the population for -keylife)")
	profileName := flag.String("profile", "", "registered profile name of the recorded campaign (screens the population for -keylife; default atmega32u4)")
	flag.Parse()
	if *path == "" {
		flag.Usage()
		return fmt.Errorf("missing -archive")
	}
	if *index {
		upgraded, err := sramaging.UpgradeArchive(*path)
		if err != nil {
			return err
		}
		if upgraded {
			fmt.Printf("indexed %s\n", *path)
		} else {
			fmt.Printf("%s already indexed\n", *path)
		}
	}
	var src sramaging.Source
	if *shards > 0 {
		var transport sramaging.ShardTransport
		if *shardWorker != "" {
			transport = sramaging.ExecShardTransport(*shardWorker)
		}
		sharded, err := sramaging.NewShardedArchiveSource(*path, *shards, transport)
		if err != nil {
			return err
		}
		defer sharded.Close()
		src = sharded
		fmt.Printf("archive: %d boards across %d shards\n\n", sharded.Devices(), *shards)
	} else {
		plain, err := sramaging.OpenArchiveSource(*path)
		if err != nil {
			return err
		}
		defer plain.Close()
		src = plain
		info := plain.Info()
		fmt.Printf("archive: %d boards %v (%s%s, %d records)\n\n",
			plain.Devices(), plain.Boards(), info.Format, indexedNote(info), info.Records)
	}

	// No WithMonths: the archive source lists the months it holds
	// complete windows for, and the assessment evaluates exactly those.
	opts := []sramaging.Option{
		sramaging.WithSource(src),
		sramaging.WithWindowSize(*window),
	}
	if *keylife {
		// The replay's screening must re-derive the recorded population's
		// masks: ScreenSeed (and, for a non-default device family,
		// ScreenProfile) carry the original campaign parameters past the
		// WithSource path (which never sets them).
		cfg := sramaging.KeyLifeConfig{ScreenSeed: *seed}
		if *profileName != "" {
			p, err := sramaging.ProfileByName(*profileName)
			if err != nil {
				return err
			}
			cfg.ScreenProfile = p
		}
		opts = append(opts, sramaging.WithKeyLifecycle(cfg))
	} else if *profileName != "" {
		return fmt.Errorf("-profile only steers the -keylife screening round; a plain replay takes its bits from the archive")
	}
	opts = append(opts,
		sramaging.WithProgress(func(ev sramaging.MonthEval) {
			fmt.Printf("%s: WCHD %.3f%%  HW %.2f%%  stable %.2f%%  Hnoise %.3f%%  BCHD %.2f%%  Hpuf %.2f%%\n",
				ev.Label,
				100*ev.Avg(func(d sramaging.DeviceMonth) float64 { return d.WCHD }),
				100*ev.Avg(func(d sramaging.DeviceMonth) float64 { return d.FHW }),
				100*ev.Avg(func(d sramaging.DeviceMonth) float64 { return d.StableRatio }),
				100*ev.Avg(func(d sramaging.DeviceMonth) float64 { return d.NoiseHmin }),
				100*ev.BCHDMean, 100*ev.PUFHmin)
		}))
	a, err := sramaging.NewAssessment(opts...)
	if err != nil {
		return err
	}
	res, err := a.Run(context.Background())
	if err != nil {
		return err
	}

	if len(res.Monthly) >= 2 {
		first, last := res.Monthly[0], res.Monthly[len(res.Monthly)-1]
		fmt.Println()
		fmt.Printf("Table I summary over months %d..%d:\n\n", first.Month, last.Month)
		fmt.Print(sramaging.RenderTableI(res.Table))
	}
	if kt := sramaging.RenderKeyLifeTable(res); kt != "" {
		fmt.Println()
		fmt.Print(kt)
	}
	return nil
}
