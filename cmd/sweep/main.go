// Command sweep runs a condition-sweep campaign: one full assessment per
// point of a temperature × voltage grid over the same simulated silicon
// population, then prints each corner's Table I headline and the
// cross-condition corner-comparison table (worst-corner WCHD/FHW, the
// stable-cell intersection across corners, temperature-sensitivity
// slopes).
//
// The default configuration is a quick demonstration: 4 devices, 6
// months, 200-measurement windows over the industrial-temperature grid
// at nominal and ±10 % supply. A pre-deployment screening run in the
// paper's shape is:
//
//	sweep -devices 16 -months 24 -window 1000 -temps -40,25,85 -volts 4.5,5,5.5
//
// -workers bounds the TOTAL sampling parallelism shared across all
// concurrent grid points; -points bounds how many points run at once.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	sramaging "repro"
	"repro/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run() error {
	devices := flag.Int("devices", 4, "boards under test per grid point (paper: 16)")
	profileName := flag.String("profile", "", "registered device profile name (default atmega32u4, the paper's chip)")
	months := flag.Int("months", 6, "campaign length in months (paper: 24)")
	window := flag.Int("window", 200, "measurements per monthly window (paper: 1000)")
	seed := flag.Uint64("seed", 20170208, "campaign seed (all points measure the same chips)")
	temps := flag.String("temps", "-40,25,85", "comma-separated grid temperatures, deg C")
	volts := flag.String("volts", "4.5,5,5.5", "comma-separated grid supply voltages")
	useHarness := flag.Bool("harness", false, "route every point through the full rig simulation")
	i2cErr := flag.Float64("i2c-error", 0, "I2C byte corruption rate (harness path)")
	workers := flag.Int("workers", 0, "total sampling parallelism shared across points (0: unbounded; with -shards: per-corner budget)")
	points := flag.Int("points", 0, "grid points in flight at once (0: all)")
	shards := flag.Int("shards", 0, "fan every grid point across N shard workers (0: in-process points)")
	shardWorker := flag.String("shardworker", "", "shardworker binary for -shards (default: in-process workers)")
	csvPath := flag.String("csv", "", "file for the cross-condition comparison CSV")
	keylife := flag.Bool("keylife", false, "run the key-lifecycle workload at every grid point (one shared screening, per-point enrollment + reconstruction)")
	verbose := flag.Bool("v", false, "print every completed point-month as it finalises")
	flag.Parse()

	tempsC, err := parseFloats(*temps)
	if err != nil {
		return fmt.Errorf("-temps: %w", err)
	}
	voltsV, err := parseFloats(*volts)
	if err != nil {
		return fmt.Errorf("-volts: %w", err)
	}

	opts := []sramaging.Option{
		sramaging.WithDevices(*devices),
	}
	if *profileName != "" {
		p, err := sramaging.ProfileByName(*profileName)
		if err != nil {
			return err
		}
		opts = append(opts, sramaging.WithProfile(p))
	}
	opts = append(opts,
		sramaging.WithMonths(*months),
		sramaging.WithWindowSize(*window),
		sramaging.WithSeed(*seed),
		sramaging.WithWorkers(*workers),
		sramaging.WithPointConcurrency(*points),
		sramaging.WithConditionGrid(tempsC, voltsV),
	)
	if *useHarness {
		opts = append(opts, sramaging.WithHarness(), sramaging.WithI2CErrorRate(*i2cErr))
	}
	if *keylife {
		opts = append(opts, sramaging.WithKeyLifecycle(sramaging.KeyLifeConfig{}))
	}
	if *shards > 0 {
		opts = append(opts, sramaging.WithShards(*shards))
		if *shardWorker != "" {
			opts = append(opts, sramaging.WithShardTransport(sramaging.ExecShardTransport(*shardWorker)))
		}
	}
	if *verbose {
		opts = append(opts, sramaging.WithSweepProgress(func(p sramaging.SweepProgress) {
			fmt.Printf("  %-12s %s done\n", p.Scenario.Name, p.Eval.Label)
		}))
	}
	a, err := sramaging.NewAssessment(opts...)
	if err != nil {
		return err
	}

	fmt.Printf("condition sweep: %d×%d grid, %d devices, %d months, %d-measurement windows\n\n",
		len(tempsC), len(voltsV), *devices, *months, *window)
	res, err := a.RunSweep(context.Background())
	if err != nil {
		return err
	}

	fmt.Println("PER-CORNER END-OF-TEST SUMMARY")
	fmt.Printf("%-14s %10s %10s %10s %12s\n", "Corner", "WCHD(avg)", "WCHD(wc)", "HW(avg)", "Stable(avg)")
	for _, pt := range res.Points {
		last := pt.Results.Monthly[len(pt.Results.Monthly)-1]
		fmt.Printf("%-14s %9.2f%% %9.2f%% %9.2f%% %11.2f%%\n",
			pt.Scenario.Name,
			100*last.Avg(func(d sramaging.DeviceMonth) float64 { return d.WCHD }),
			100*last.Worst(func(d sramaging.DeviceMonth) float64 { return d.WCHD }, false),
			100*last.Avg(func(d sramaging.DeviceMonth) float64 { return d.FHW }),
			100*last.Avg(func(d sramaging.DeviceMonth) float64 { return d.StableRatio }))
	}
	fmt.Println()
	fmt.Print(sramaging.RenderCornerTable(res.Comparison))
	if *keylife {
		for _, pt := range res.Points {
			if kt := sramaging.RenderKeyLifeTable(pt.Results); kt != "" {
				fmt.Printf("\n%s\n", pt.Scenario.Name)
				fmt.Print(kt)
			}
		}
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		c := res.Comparison
		if err := report.WriteSeriesCSV(f, "month",
			c.Labels,
			[]string{"worst_wchd", "worst_fhw", "stable_intersection"},
			[][]float64{c.WorstWCHD, c.WorstFHW, c.StableIntersect}); err != nil {
			return err
		}
		fmt.Printf("\ncomparison series written to %s\n", *csvPath)
	}
	return nil
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", p, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
