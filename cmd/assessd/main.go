// Command assessd is the long-lived assessment service: campaign specs
// arrive over HTTP, run concurrently under one global sampling budget,
// stream their per-month results as NDJSON, and checkpoint every
// measurement record to a binary archive in the data directory. A killed
// or drained service resumes its interrupted campaigns on the next start
// with results bit-identical to an uninterrupted run.
//
//	assessd -addr 127.0.0.1:8080 -data /var/lib/assessd -workers 8 -max-active 4
//
// The API (see package repro/internal/serve):
//
//	POST /v1/campaigns             submit a campaign spec (JSON)
//	GET  /v1/campaigns             list campaigns
//	GET  /v1/campaigns/{id}        one campaign's status
//	GET  /v1/campaigns/{id}/months completed month evaluations
//	GET  /v1/campaigns/{id}/stream NDJSON result stream
//	POST /v1/campaigns/{id}/cancel cancel a campaign
//
// On SIGTERM/SIGINT the service drains gracefully: the listener closes,
// running campaigns stop at their next month boundary, and every
// campaign's state and archive are left checkpointed for the restart.
// cmd/agingtest's -remote flag is the matching client.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "assessd:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	data := flag.String("data", "assessd-data", "data directory (state files and checkpoint archives)")
	workers := flag.Int("workers", 0, "global sampling budget shared by all campaigns (0: unbounded)")
	maxActive := flag.Int("max-active", 0, "campaigns measuring concurrently (0: unlimited)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long to wait for campaigns to checkpoint on shutdown")
	flag.Parse()

	mgr, err := serve.NewManager(serve.Config{DataDir: *data, Workers: *workers, MaxActive: *maxActive})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: serve.Handler(mgr)}
	fmt.Printf("assessd: listening on %s (data %s, workers %d, max-active %d)\n",
		ln.Addr(), *data, *workers, *maxActive)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Println("assessd: draining (campaigns checkpoint at their next month boundary)")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	srv.Shutdown(drainCtx)
	if err := mgr.Close(drainCtx); err != nil {
		return err
	}
	fmt.Println("assessd: drained")
	return nil
}
