// Package sramaging is the public facade of the reproduction of
// "Long-term Continuous Assessment of SRAM PUF and Source of Random
// Numbers" (Wang, Selimis, Maes, Goossens — DATE 2020).
//
// The API is built from three composable abstractions:
//
//   - Source — where measurements come from. NewSimulatedSource (direct
//     sampling), NewRigSource (the full measurement-rig simulation) and
//     NewArchiveSource (JSONL archive replay) are interchangeable, so an
//     offline evaluation and a live campaign are the same call; external
//     Source implementations (sharded, networked, condition sweeps) plug
//     into the same engine.
//
//   - Metric — externally registered one-pass accumulators that ride the
//     engine's single measurement pass next to the built-in Table I
//     metrics (per-device Metric, cross-device CrossMetric); see
//     NewMetric, NewCrossMetric and examples/custommetric.
//
//   - Assessment — the campaign builder: functional options
//     (WithDevices, WithMonths, WithWindowSize, WithWorkers, WithHarness,
//     WithMetrics, WithProgress, ...), a context-cancellable Run, and
//     incremental per-month emission. With WithConditions or
//     WithConditionGrid the same builder describes a condition sweep —
//     one assessment per temperature/voltage point over the same chips —
//     executed by RunSweep with cross-condition comparison series
//     (worst-corner WCHD/FHW, stable-cell intersection, temperature
//     sensitivity); see examples/tempsweep and cmd/sweep. With
//     WithShards(n) the campaign fans out across n worker processes
//     (cmd/shardworker over ExecShardTransport, or in-process pipes) and
//     the merged Results are bit-identical to the single-process run;
//     see DESIGN.md §4.
//
// A reduced campaign:
//
//	a, _ := sramaging.NewAssessment(
//	        sramaging.WithDevices(4),
//	        sramaging.WithMonths(6),
//	        sramaging.WithWindowSize(200),
//	)
//	res, _ := a.Run(context.Background())
//	fmt.Print(sramaging.RenderTableI(res.Table))
//
// The historical flat surface (DefaultCampaign, RunCampaign,
// RunCampaignBatch) remains as a deprecated shim over the same engine.
// The facade also exposes the calibrated device profiles
// (internal/silicon), simulated chips, and the application substrates
// (key generation, TRNG, randomness assessment).
//
// See the examples/ directory for runnable programs and DESIGN.md for the
// system inventory.
package sramaging

import (
	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/fuzzy"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/silicon"
	"repro/internal/sram"
	"repro/internal/trng"
)

// Re-exported core types.
type (
	// CampaignConfig parameterises a long-term assessment campaign.
	//
	// Deprecated: build an Assessment with functional options instead;
	// CampaignConfig remains for the RunCampaign shim.
	CampaignConfig = core.Config
	// CampaignResults carries the monthly metric series and Table I.
	//
	// Deprecated: use the identical Results alias.
	CampaignResults = core.Results
	// TableI is the paper's summary table.
	TableI = core.TableI
	// DeviceMonth is one device's metrics for one monthly window.
	DeviceMonth = core.DeviceMonth
	// DeviceProfile describes a calibrated SRAM device family.
	DeviceProfile = silicon.DeviceProfile
)

// DefaultCampaign returns the paper's campaign configuration: 16
// ATmega32u4 boards, 24 months, 1,000-measurement monthly windows.
//
// Deprecated: NewAssessment() with no options is the same campaign on
// the composable API.
func DefaultCampaign() (CampaignConfig, error) { return core.DefaultConfig() }

// RunCampaign executes a campaign with the streaming engine and returns
// its results. It is a thin shim over the Source/Metric/Assessment API —
// the Config is translated into a simulated or rig Source and a month
// range, and the same engine runs it — kept for compatibility and
// verified bit-identical to the historical engine by the equivalence
// tests.
//
// Deprecated: use NewAssessment, which adds cancellation, incremental
// per-month results, custom metrics and replayable sources.
func RunCampaign(cfg CampaignConfig) (*CampaignResults, error) {
	camp, err := core.NewCampaign(cfg)
	if err != nil {
		return nil, err
	}
	return camp.Run()
}

// RunCampaignBatch executes a campaign with the historical two-pass
// engine: each evaluation window is materialised in memory and handed to
// the batch metric functions. It produces bit-identical results to
// RunCampaign on the same configuration (a property the tests assert) and
// exists as the validation oracle for the streaming engine — prefer
// RunCampaign (or an Assessment) everywhere else.
//
// Deprecated: oracle use only; applications should run an Assessment.
func RunCampaignBatch(cfg CampaignConfig) (*CampaignResults, error) {
	camp, err := core.NewCampaign(cfg)
	if err != nil {
		return nil, err
	}
	return camp.RunBatch()
}

// ATmega32u4 returns the calibrated profile of the paper's device.
func ATmega32u4() (DeviceProfile, error) { return silicon.ATmega32u4() }

// CMOS65nmAccelerated returns the accelerated-aging comparator profile
// (Maes & van der Leest, HOST 2014).
func CMOS65nmAccelerated() (DeviceProfile, error) { return silicon.CMOS65nmAccelerated() }

// NewChip instantiates one simulated SRAM chip of the given profile.
// The same seed always reproduces the same chip.
func NewChip(profile DeviceProfile, seed uint64) (*sram.Array, error) {
	return sram.New(profile, rng.New(seed))
}

// RenderTableI formats a Table I like the paper.
func RenderTableI(t TableI) string { return report.RenderTableI(t) }

// PredictedWCHDTrajectory returns the analytic WCHD expectation per month
// for a profile (used for the nominal-vs-accelerated comparison).
func PredictedWCHDTrajectory(profile DeviceProfile, months int) ([]float64, error) {
	return core.PredictedWCHDTrajectory(profile, months)
}

// NewKeyExtractor returns the repository's standard PUF key-generation
// scheme: an 11-block Golay(23,12) ∘ repetition(5) code-offset fuzzy
// extractor consuming 1,265 response bits for a 132-bit secret — sized so
// the paper's end-of-life worst-case BER (3.25%) reconstructs with a
// failure probability below 1e-9 per block.
func NewKeyExtractor() (*fuzzy.Extractor, error) {
	golay := ecc.NewGolay()
	rep, err := ecc.NewRepetition(5)
	if err != nil {
		return nil, err
	}
	concat, err := ecc.NewConcatenated(golay, rep)
	if err != nil {
		return nil, err
	}
	blocked, err := ecc.NewBlocked(concat, 11)
	if err != nil {
		return nil, err
	}
	return fuzzy.New(blocked)
}

// NewTRNG builds the SRAM-PUF true random number generator over a chip.
func NewTRNG(chip *sram.Array) (*trng.Generator, error) {
	return trng.New(chip.PowerUpWindow, trng.DefaultConfig())
}
