package sramaging

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/silicon"
)

// Re-exported device-model and fleet types. A Fleet maps every device
// index of a campaign onto one of a set of registered profiles,
// deterministically from the campaign seed, so one campaign can mix an
// embedded SRAM family with a cache-structured large-array one; results
// then carry a per-profile breakdown (MonthEval.ByProfile). See
// DESIGN.md ("Device models and fleets").
type (
	// Fleet is a validated heterogeneous profile mix with a
	// seed-deterministic per-device assignment.
	Fleet = core.Fleet
	// ProfileEval is one profile's aggregate of the per-device
	// reliability metrics within one evaluation month.
	ProfileEval = core.ProfileEval
	// ProfileOption configures NewDeviceProfile.
	ProfileOption = silicon.ProfileOption
	// CellModel is the pluggable per-cell behaviour behind a
	// DeviceProfile: skew sampling, aging response, noise scaling.
	CellModel = silicon.CellModel
)

// ErrUnknownProfile reports a profile name absent from the registry,
// matchable with errors.Is.
var ErrUnknownProfile = silicon.ErrUnknownProfile

// Profile construction options for NewDeviceProfile, re-exported from
// the silicon layer.
var (
	WithTechnology      = silicon.WithTechnology
	WithGeometry        = silicon.WithGeometry
	WithOperatingPoint  = silicon.WithOperatingPoint
	WithMismatch        = silicon.WithMismatch
	WithSpread          = silicon.WithSpread
	WithKinetics        = silicon.WithKinetics
	WithAgingDispersion = silicon.WithAgingDispersion
	WithCellModel       = silicon.WithCellModel
	WithLineStructure   = silicon.WithLineStructure
	WithNoiseRel        = silicon.WithNoiseRel
)

// Registered cell-model names for WithCellModel.
const (
	// ModelIID is the paper's calibrated independent-mismatch model
	// (the default for profiles that name no model).
	ModelIID = silicon.ModelIID
	// ModelCorrelated is the cache-line-structured large-array model:
	// block-correlated mismatch via a shared per-line component.
	ModelCorrelated = silicon.ModelCorrelated
)

// ProfileByName resolves a registered device profile by name
// (case-insensitive): the built-ins — "atmega32u4",
// "cmos65nm-accelerated", "cachearray-2mb", "cachearray-64kb" — plus
// anything added with RegisterProfile. Unknown names report
// ErrUnknownProfile listing every registered name.
func ProfileByName(name string) (DeviceProfile, error) { return silicon.Lookup(name) }

// RegisterProfile adds a profile constructor under name, making it
// resolvable by ProfileByName, the assessd service's Spec.Profile /
// Spec.Fleet fields, and the CLIs' -profile flag. It panics on an empty
// or duplicate name — registration is program-initialisation wiring.
func RegisterProfile(name string, build func() (DeviceProfile, error)) {
	silicon.Register(name, build)
}

// RegisteredProfiles returns every registered profile name, sorted.
func RegisteredProfiles() []string { return silicon.Names() }

// NewDeviceProfile builds a validated custom profile from functional
// options (silicon.With*), starting from the paper's calibrated nominal
// values — the supported construction path for custom device families;
// see DESIGN.md ("Device models and fleets") for the migration from
// direct struct construction.
func NewDeviceProfile(name string, opts ...ProfileOption) (DeviceProfile, error) {
	return silicon.NewProfile(name, opts...)
}

// NewFleet validates a profile mix into a Fleet: at least one profile,
// distinct names, equal read-window widths (the cross-device
// uniqueness metrics compare patterns across all devices). A
// single-profile fleet is bit-identical to the plain profile.
func NewFleet(profiles ...DeviceProfile) (*Fleet, error) { return core.NewFleet(profiles...) }

// NewFleetSource builds a direct-sampling source over a heterogeneous
// fleet: device d's chip is built from the profile the fleet assigns it
// under the seed, with the same per-device derivation the
// single-profile source uses.
func NewFleetSource(fleet *Fleet, devices int, seed uint64) (*SimulatedSource, error) {
	return core.NewSimFleetSource(fleet, devices, seed)
}

// NewShardedFleetSource fans a fleet campaign across shard workers;
// every worker rebuilds the seed-deterministic assignment and builds
// only its slice of the chips, so any shard count produces the
// bit-identical streams of NewFleetSource.
func NewShardedFleetSource(fleet *Fleet, devices int, seed uint64, shards int, t ShardTransport) (*ShardedSource, error) {
	return core.NewShardedSimFleetSource(fleet, devices, seed, shards, t)
}

// WithFleet runs the assessment over a heterogeneous fleet instead of a
// single profile: every device's profile is assigned deterministically
// from the campaign seed, and each month's results carry the
// per-profile breakdown in MonthEval.ByProfile. Exclusive with
// WithProfile and WithHarness (the measurement rig is a single-profile
// instrument); composes with WithShards and the condition sweep.
func WithFleet(fleet *Fleet) Option {
	return func(a *Assessment) error {
		if fleet == nil {
			return fmt.Errorf("%w: nil fleet", ErrConfig)
		}
		a.fleet, a.simSet = fleet, true
		return nil
	}
}
